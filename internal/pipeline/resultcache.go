package pipeline

import (
	"net/netip"

	"github.com/netsec-lab/rovista/internal/detect"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/scan"
)

// PairIdentity names one (vVP, tNode) measurement independently of when it
// runs: the AS, the grid coordinates (which feed the pair's derived seed),
// and the concrete endpoints measured at those coordinates. Two rounds that
// lay out the same identity at the same coordinates run byte-identical
// measurements — provided the round-level inputs (seed, detect config,
// fault profile: the ResultCache fingerprint) and the per-pair routing and
// liveness context (the Stamp) also match.
type PairIdentity struct {
	ASN              inet.ASN
	TNodeIdx, VVPIdx int
	TNode            scan.TNode
	VVPAddr          netip.Addr
}

// IdentityFor extracts a Pair's cache identity.
func IdentityFor(p Pair) PairIdentity {
	return PairIdentity{ASN: p.ASN, TNodeIdx: p.TNodeIdx, VVPIdx: p.VVPIdx, TNode: p.TNode, VVPAddr: p.VVP.Addr}
}

// Stamp is the per-pair validity context a cached result was measured
// under. A pair measurement exchanges packets toward exactly three
// destinations — the measurement client, the vVP, and the tNode — so its
// outcome can only change when forwarding toward one of them changes
// (captured by Epoch, the max of the three destinations' affected routing
// epochs), when a destination is repointed at a different most-specific
// prefix (the three interned LPM ids — a table can grow a more specific
// prefix without moving any epoch), or when the measured hosts' liveness
// flips (the vanished bits). Epochs only ever increase, so two equal Stamps
// mean nothing relevant changed between the two rounds.
type Stamp struct {
	Epoch                      uint64
	ClientID, VVPID, TNodeID   uint32
	VVPVanished, TNodeVanished bool
}

// cached is one stored result plus the stamp it is valid for.
type cached struct {
	res   detect.PairResult
	stamp Stamp
}

// ResultCache memoizes per-pair measurement results across rounds so an
// incremental round re-measures only the pairs whose identity, stamp, or
// round fingerprint changed — O(churned pairs) instead of O(pairs). It
// stores raw results (before any post-measurement mutation such as vVP
// re-qualification discards), and splicing a hit into the flat grid is
// bit-identical to re-measuring: the measurement is a pure function of
// (identity, fingerprint, stamp), which together enumerate every input.
//
// The cache is written only from the round driver between stages, never
// from executor workers, so it needs no locking.
type ResultCache struct {
	fingerprint any
	m           map[PairIdentity]cached

	// Cumulative counters across the cache's lifetime (monotonic; rovistad
	// exposes them under /metrics).
	hits, misses, flushes uint64
}

// NewResultCache returns an empty cache.
func NewResultCache() *ResultCache {
	return &ResultCache{m: make(map[PairIdentity]cached)}
}

// Len returns the number of cached pair results.
func (c *ResultCache) Len() int {
	if c == nil {
		return 0
	}
	return len(c.m)
}

// Flush drops every cached result (the forced-full-round path).
func (c *ResultCache) Flush() {
	if c == nil {
		return
	}
	if len(c.m) > 0 {
		c.flushes++
	}
	clear(c.m)
}

// BeginRound installs the round fingerprint — a comparable value capturing
// every measurement input that is not part of a pair's identity or stamp
// (round seed, detect config, retry policy, fault profile and seed, network
// host-population generation, vVP selection knobs). When it differs from the
// previous round's, every cached result is conservatively invalid and the
// cache is flushed. Returns true when the cache survived (reuse possible).
func (c *ResultCache) BeginRound(fingerprint any) bool {
	if c == nil {
		return false
	}
	if c.fingerprint != fingerprint {
		c.Flush()
		c.fingerprint = fingerprint
		return false
	}
	return true
}

// Lookup returns the cached result for the identity when one exists with
// exactly the given stamp.
func (c *ResultCache) Lookup(id PairIdentity, st Stamp) (detect.PairResult, bool) {
	if c == nil {
		return detect.PairResult{}, false
	}
	e, ok := c.m[id]
	if !ok || e.stamp != st {
		c.misses++
		return detect.PairResult{}, false
	}
	c.hits++
	return e.res, true
}

// Store records a freshly measured raw result under its identity and stamp,
// replacing any stale entry. Callers must store the result before any
// post-measurement stage mutates it (the re-qualification discard pass), so
// the next round's splice reproduces the raw grid exactly.
func (c *ResultCache) Store(id PairIdentity, st Stamp, res detect.PairResult) {
	if c == nil {
		return
	}
	c.m[id] = cached{res: res, stamp: st}
}

// Stats returns the cumulative (hits, misses, flushes) counters.
func (c *ResultCache) Stats() (hits, misses, flushes uint64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.hits, c.misses, c.flushes
}
