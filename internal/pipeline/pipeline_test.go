package pipeline

import (
	"net/netip"
	"reflect"
	"sync"
	"testing"

	"github.com/netsec-lab/rovista/internal/detect"
	"github.com/netsec-lab/rovista/internal/scan"
)

func addr(last byte) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 0, 0, last})
}

func tnodes(n int) []scan.TNode {
	out := make([]scan.TNode, n)
	for i := range out {
		out[i] = scan.TNode{Addr: addr(byte(i + 1)), Port: 443}
	}
	return out
}

// grid builds a results grid from per-cell outcomes; 'f' = usable outbound
// filtering, 'r' = usable no-filtering, 'i' = usable inbound filtering,
// 'x' = unusable.
func grid(cells string) []detect.PairResult {
	out := make([]detect.PairResult, len(cells))
	for i, c := range cells {
		switch c {
		case 'f':
			out[i] = detect.PairResult{Usable: true, Outcome: detect.OutboundFiltering}
		case 'r':
			out[i] = detect.PairResult{Usable: true, Outcome: detect.NoFiltering}
		case 'i':
			out[i] = detect.PairResult{Usable: true, Outcome: detect.InboundFiltering}
		case 'x':
			out[i] = detect.PairResult{Usable: false, Outcome: detect.Inconclusive}
		}
	}
	return out
}

func TestUnanimityScorerAllFiltered(t *testing.T) {
	// 2 tNodes x 2 vVPs, all unanimous outbound filtering: score 100.
	out := UnanimityScorer{}.ScoreAS(1, tnodes(2), 2, grid("ffff"))
	if out.Score != 100 || out.TNodesMeasured != 2 || out.TNodesFiltered != 2 {
		t.Fatalf("unexpected outcome: %+v", out)
	}
	if !out.Unanimous || out.ConsistentCells != 2 || out.TotalCells != 2 {
		t.Fatalf("unexpected consistency: %+v", out)
	}
	for i := 0; i < 2; i++ {
		if v, ok := out.Verdicts[addr(byte(i+1))]; !ok || !v {
			t.Fatalf("tNode %d missing filtered verdict: %+v", i, out.Verdicts)
		}
	}
}

func TestUnanimityScorerMixedTNodes(t *testing.T) {
	// tNode0 unanimous filtered, tNode1 unanimous reachable: score 50.
	out := UnanimityScorer{}.ScoreAS(1, tnodes(2), 2, grid("ffrr"))
	if out.Score != 50 || out.TNodesMeasured != 2 || out.TNodesFiltered != 1 {
		t.Fatalf("unexpected outcome: %+v", out)
	}
	if v := out.Verdicts[addr(1)]; !v {
		t.Fatal("tNode0 should be judged filtered")
	}
	if v := out.Verdicts[addr(2)]; v {
		t.Fatal("tNode1 should be judged reachable")
	}
}

func TestUnanimityScorerDisagreementDiscards(t *testing.T) {
	// tNode0's vVPs disagree: the tNode is discarded and unanimity breaks,
	// but tNode1 still counts.
	out := UnanimityScorer{}.ScoreAS(1, tnodes(2), 2, grid("frff"))
	if out.Unanimous {
		t.Fatal("disagreement must clear Unanimous")
	}
	if out.TNodesMeasured != 1 || out.TNodesFiltered != 1 || out.Score != 100 {
		t.Fatalf("unexpected outcome: %+v", out)
	}
	if out.ConsistentCells != 1 || out.TotalCells != 2 {
		t.Fatalf("unexpected consistency: %+v", out)
	}
	if _, ok := out.Verdicts[addr(1)]; ok {
		t.Fatal("discarded tNode must not get a verdict")
	}
}

func TestUnanimityScorerIgnoresUninformativeOutcomes(t *testing.T) {
	// Inbound filtering and unusable results carry no vote: a tNode with
	// only those contributes nothing, and one informative vote decides.
	out := UnanimityScorer{}.ScoreAS(1, tnodes(2), 2, grid("ixxf"))
	if out.TotalCells != 1 || out.TNodesMeasured != 1 || out.TNodesFiltered != 1 {
		t.Fatalf("unexpected outcome: %+v", out)
	}
	if out.Score != 100 || !out.Unanimous {
		t.Fatalf("unexpected outcome: %+v", out)
	}
}

func TestUnanimityScorerNothingUsable(t *testing.T) {
	out := UnanimityScorer{}.ScoreAS(1, tnodes(1), 2, grid("xx"))
	if out.TNodesMeasured != 0 || out.Score != 0 || out.TotalCells != 0 {
		t.Fatalf("unexpected outcome: %+v", out)
	}
}

func TestExecutorCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 500
		counts := make([]int32, n)
		var mu sync.Mutex
		(&Executor{Workers: workers}).ForEach(n, func(i int) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestExecutorDeterministicResults(t *testing.T) {
	// Pure per-slot work must yield identical result slices for any pool
	// size — the property the parallel measurement round is built on.
	const n = 200
	run := func(workers int) []int {
		out := make([]int, n)
		(&Executor{Workers: workers}).ForEach(n, func(i int) { out[i] = i*i + 7 })
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 3, 8, 0} { // 0 = NumCPU
		if got := run(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d produced different results", workers)
		}
	}
}

func TestExecutorProgressReachesTotal(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls []int
		e := &Executor{Workers: workers, Progress: func(done, total int) {
			if total != 50 {
				t.Fatalf("total = %d", total)
			}
			calls = append(calls, done)
		}}
		e.ForEach(50, func(int) {})
		if len(calls) == 0 || calls[len(calls)-1] != 50 {
			t.Fatalf("workers=%d: progress never reported completion: %v", workers, calls)
		}
		for i := 1; i < len(calls); i++ {
			if calls[i] <= calls[i-1] {
				t.Fatalf("workers=%d: progress not monotonic: %v", workers, calls)
			}
		}
	}
}

func TestExecutorZeroItems(t *testing.T) {
	(&Executor{Workers: 4}).ForEach(0, func(int) { t.Fatal("fn must not run") })
}

// TestExecutorSingleWorkerZeroAlloc pins the Workers=1 fast path: without a
// Progress callback a one-worker ForEach must cost exactly what a plain loop
// costs — no goroutine, no WaitGroup, no allocations.
func TestExecutorSingleWorkerZeroAlloc(t *testing.T) {
	e := &Executor{Workers: 1}
	sink := 0
	fn := func(i int) { sink += i }
	if allocs := testing.AllocsPerRun(100, func() { e.ForEach(64, fn) }); allocs != 0 {
		t.Fatalf("single-worker ForEach allocated %.0f times per run, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("fn never ran")
	}
}

// TestExecutorNilReceiver: a nil *Executor resolves to the default pool and
// must still run every item (the progress hoist must not dereference it).
func TestExecutorNilReceiver(t *testing.T) {
	var e *Executor
	n := 100
	out := make([]int, n)
	e.ForEach(n, func(i int) { out[i] = 1 })
	for i, v := range out {
		if v != 1 {
			t.Fatalf("item %d not run by nil executor", i)
		}
	}
}

func TestMetricsStageTimings(t *testing.T) {
	m := &Metrics{}
	stop := m.StartStage("discover")
	stop()
	m.StartStage("measure")()
	m.StartStage("discover")()
	if got := m.SortedStageNames(); !reflect.DeepEqual(got, []string{"discover", "measure"}) {
		t.Fatalf("stage names = %v", got)
	}
	if _, ok := m.StageDuration("discover"); !ok {
		t.Fatal("discover stage not recorded")
	}
	if _, ok := m.StageDuration("absent"); ok {
		t.Fatal("phantom stage recorded")
	}
	if len(m.Stages) != 3 {
		t.Fatalf("expected 3 timing entries, got %d", len(m.Stages))
	}
}

func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.StartStage("x")()
	if _, ok := m.StageDuration("x"); ok {
		t.Fatal("nil metrics must record nothing")
	}
	if m.String() != "" || m.SortedStageNames() != nil {
		t.Fatal("nil metrics must render empty")
	}
}
