package pipeline

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// StageTiming records one stage's wall-clock duration.
type StageTiming struct {
	Name     string
	Duration time.Duration
}

// Metrics collects a round's observability data: per-stage wall-clock
// timings and pair-level counters. It is written by the round driver after
// each stage completes (never from worker goroutines), so plain fields
// suffice.
type Metrics struct {
	// Workers is the executor pool size the round ran with.
	Workers int
	// Stages holds timings in execution order.
	Stages []StageTiming
	// PairsMeasured counts every (vVP, tNode) measurement run;
	// PairsUsable the subset that passed the Appendix-A FP/FN gate;
	// PairsDiscarded the rest.
	PairsMeasured, PairsUsable, PairsDiscarded int
}

// StartStage begins timing a named stage and returns the function that
// stops the clock and appends the timing:
//
//	defer m.StartStage("discover-vvps")()
//
// A nil receiver returns a no-op, so callers never need to guard.
func (m *Metrics) StartStage(name string) func() {
	if m == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		m.Stages = append(m.Stages, StageTiming{Name: name, Duration: time.Since(start)})
	}
}

// StageDuration returns the recorded duration for name (summing repeats)
// and whether the stage ran.
func (m *Metrics) StageDuration(name string) (time.Duration, bool) {
	if m == nil {
		return 0, false
	}
	var total time.Duration
	found := false
	for _, s := range m.Stages {
		if s.Name == name {
			total += s.Duration
			found = true
		}
	}
	return total, found
}

// String renders a compact human-readable report (for -timings output).
func (m *Metrics) String() string {
	if m == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "workers=%d pairs=%d usable=%d discarded=%d\n",
		m.Workers, m.PairsMeasured, m.PairsUsable, m.PairsDiscarded)
	width := 0
	for _, s := range m.Stages {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	for _, s := range m.Stages {
		fmt.Fprintf(&b, "  %-*s %12v\n", width, s.Name, s.Duration.Round(time.Microsecond))
	}
	return b.String()
}

// SortedStageNames returns the distinct stage names in alphabetical order
// (mainly for tests and stable reporting).
func (m *Metrics) SortedStageNames() []string {
	if m == nil {
		return nil
	}
	seen := make(map[string]bool, len(m.Stages))
	var names []string
	for _, s := range m.Stages {
		if !seen[s.Name] {
			seen[s.Name] = true
			names = append(names, s.Name)
		}
	}
	sort.Strings(names)
	return names
}
