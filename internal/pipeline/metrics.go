package pipeline

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// StageTiming records one stage's wall-clock duration.
type StageTiming struct {
	Name     string
	Duration time.Duration
}

// Metrics collects a round's observability data: per-stage wall-clock
// timings and pair-level counters. It is written by the round driver after
// each stage completes (never from worker goroutines), so plain fields
// suffice.
type Metrics struct {
	// Workers is the executor pool size the round ran with.
	Workers int
	// Stages holds timings in execution order.
	Stages []StageTiming
	// PairsMeasured counts every (vVP, tNode) measurement run;
	// PairsUsable the subset that passed the Appendix-A FP/FN gate;
	// PairsDiscarded the rest.
	PairsMeasured, PairsUsable, PairsDiscarded int
	// PairsReused counts pairs served from the incremental result cache
	// this round; PairsRemeasured the pairs actually executed. On a
	// non-incremental round PairsReused is 0 and PairsRemeasured equals
	// PairsMeasured. The reuse ratio PairsReused/PairsMeasured is the
	// round's effective O(churn) factor.
	PairsReused, PairsRemeasured int
	// FullRound marks a round that deliberately bypassed the result cache
	// (a forced periodic full round, or caching disabled/inapplicable).
	FullRound bool
	// Faults holds the fault/retry/discard counters for the round.
	Faults FaultMetrics
}

// FaultMetrics counts what the fault-injection layer did to a round and how
// the hardened pipeline responded. All fields stay zero on a clean round, so
// a nonzero counter is always attributable to the armed profile — the
// robustness harness's no-silent-flips invariant depends on that.
type FaultMetrics struct {
	// Profile names the armed fault profile ("none" when clean).
	Profile string
	// PairRetries counts extra measurement attempts beyond the first;
	// PairsRecovered the pairs whose final (retried) attempt was usable.
	PairRetries, PairsRecovered int
	// VVPsChurned counts vantage points that vanished between qualification
	// and measurement.
	VVPsChurned int
	// VVPsUnstable counts vVP columns flagged by the instability check
	// (half or more of the column unusable); of those, VVPsRequalified
	// passed the re-qualification scan and kept their results, while
	// VVPsDropped failed it and had their columns discarded.
	VVPsUnstable, VVPsRequalified, VVPsDropped int
	// PathCacheFlaps counts forwarding-path-cache invalidations injected
	// concurrently with the measure stage.
	PathCacheFlaps int
	// RouteFlaps counts transient origin flaps (coalesced withdraw +
	// re-announce event batches) pushed through the convergence engine
	// before the measure stage.
	RouteFlaps int
}

// StartStage begins timing a named stage and returns the function that
// stops the clock and appends the timing:
//
//	defer m.StartStage("discover-vvps")()
//
// A nil receiver returns a no-op, so callers never need to guard.
func (m *Metrics) StartStage(name string) func() {
	if m == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		m.Stages = append(m.Stages, StageTiming{Name: name, Duration: time.Since(start)})
	}
}

// StageDuration returns the recorded duration for name (summing repeats)
// and whether the stage ran.
func (m *Metrics) StageDuration(name string) (time.Duration, bool) {
	if m == nil {
		return 0, false
	}
	var total time.Duration
	found := false
	for _, s := range m.Stages {
		if s.Name == name {
			total += s.Duration
			found = true
		}
	}
	return total, found
}

// String renders a compact human-readable report (for -timings output).
func (m *Metrics) String() string {
	if m == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "workers=%d pairs=%d usable=%d discarded=%d\n",
		m.Workers, m.PairsMeasured, m.PairsUsable, m.PairsDiscarded)
	if m.PairsReused > 0 || (m.PairsRemeasured > 0 && m.PairsRemeasured != m.PairsMeasured) {
		fmt.Fprintf(&b, "incremental: reused=%d remeasured=%d (%.1f%% reuse)\n",
			m.PairsReused, m.PairsRemeasured,
			100*float64(m.PairsReused)/float64(m.PairsMeasured))
	}
	if f := m.Faults; f.Profile != "" && f.Profile != "none" {
		fmt.Fprintf(&b, "faults=%s retries=%d recovered=%d churned=%d unstable=%d requalified=%d dropped=%d cache-flaps=%d route-flaps=%d\n",
			f.Profile, f.PairRetries, f.PairsRecovered, f.VVPsChurned,
			f.VVPsUnstable, f.VVPsRequalified, f.VVPsDropped, f.PathCacheFlaps, f.RouteFlaps)
	}
	width := 0
	for _, s := range m.Stages {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	for _, s := range m.Stages {
		fmt.Fprintf(&b, "  %-*s %12v\n", width, s.Name, s.Duration.Round(time.Microsecond))
	}
	return b.String()
}

// SortedStageNames returns the distinct stage names in alphabetical order
// (mainly for tests and stable reporting).
func (m *Metrics) SortedStageNames() []string {
	if m == nil {
		return nil
	}
	seen := make(map[string]bool, len(m.Stages))
	var names []string
	for _, s := range m.Stages {
		if !seen[s.Name] {
			seen[s.Name] = true
			names = append(names, s.Name)
		}
	}
	sort.Strings(names)
	return names
}
