package pipeline

import (
	"net/netip"
	"reflect"
	"testing"

	"github.com/netsec-lab/rovista/internal/detect"
	"github.com/netsec-lab/rovista/internal/scan"
)

func testIdentity(last byte) PairIdentity {
	return IdentityFor(Pair{
		ASN:      100,
		TNodeIdx: 1,
		VVPIdx:   2,
		TNode:    scan.TNode{Addr: netip.AddrFrom4([4]byte{192, 0, 2, last}), Port: 443},
		VVP:      scan.VVP{Addr: netip.AddrFrom4([4]byte{198, 51, 100, last}), ASN: 100},
	})
}

func TestResultCacheHitRequiresExactStamp(t *testing.T) {
	c := NewResultCache()
	c.BeginRound("fp")
	id := testIdentity(1)
	st := Stamp{Epoch: 7, ClientID: 1, VVPID: 2, TNodeID: 3}
	res := detect.PairResult{Usable: true, Attempts: 2}
	c.Store(id, st, res)

	if got, ok := c.Lookup(id, st); !ok || !reflect.DeepEqual(got, res) {
		t.Fatalf("exact stamp must hit: ok=%v got=%+v", ok, got)
	}
	for name, bad := range map[string]Stamp{
		"epoch":         {Epoch: 8, ClientID: 1, VVPID: 2, TNodeID: 3},
		"lpm-id":        {Epoch: 7, ClientID: 1, VVPID: 9, TNodeID: 3},
		"vvp-vanished":  {Epoch: 7, ClientID: 1, VVPID: 2, TNodeID: 3, VVPVanished: true},
		"tn-vanished":   {Epoch: 7, ClientID: 1, VVPID: 2, TNodeID: 3, TNodeVanished: true},
		"client-lpm-id": {Epoch: 7, ClientID: 5, VVPID: 2, TNodeID: 3},
	} {
		if _, ok := c.Lookup(id, bad); ok {
			t.Fatalf("stale %s stamp must miss", name)
		}
	}
	if _, ok := c.Lookup(testIdentity(2), st); ok {
		t.Fatal("unknown identity must miss")
	}
}

func TestResultCacheFingerprintFlush(t *testing.T) {
	c := NewResultCache()
	id, st := testIdentity(1), Stamp{Epoch: 1}

	if c.BeginRound("fp-a") {
		t.Fatal("first round cannot report a surviving cache")
	}
	c.Store(id, st, detect.PairResult{Usable: true})
	if !c.BeginRound("fp-a") {
		t.Fatal("unchanged fingerprint must keep the cache")
	}
	if _, ok := c.Lookup(id, st); !ok {
		t.Fatal("entry lost across an unchanged-fingerprint round")
	}
	if c.BeginRound("fp-b") {
		t.Fatal("changed fingerprint must flush")
	}
	if c.Len() != 0 {
		t.Fatalf("cache not empty after fingerprint change: %d entries", c.Len())
	}
	if _, ok := c.Lookup(id, st); ok {
		t.Fatal("entry survived a fingerprint change")
	}
}

func TestResultCacheStatsAndFlush(t *testing.T) {
	c := NewResultCache()
	c.BeginRound(1)
	id, st := testIdentity(1), Stamp{Epoch: 1}
	c.Lookup(id, st) // miss: unknown identity
	c.Store(id, st, detect.PairResult{})
	c.Lookup(id, st)              // hit
	c.Lookup(id, Stamp{Epoch: 2}) // miss: stale stamp
	c.Flush()                     // counted: cache was non-empty
	c.Flush()                     // not counted: already empty
	hits, misses, flushes := c.Stats()
	if hits != 1 || misses != 2 || flushes != 1 {
		t.Fatalf("stats = (%d, %d, %d), want (1, 2, 1)", hits, misses, flushes)
	}
	if c.Len() != 0 {
		t.Fatalf("Len after flush = %d", c.Len())
	}
}

func TestResultCacheNilReceiver(t *testing.T) {
	var c *ResultCache
	if c.BeginRound("fp") {
		t.Fatal("nil cache cannot survive a round")
	}
	c.Store(testIdentity(1), Stamp{}, detect.PairResult{})
	if _, ok := c.Lookup(testIdentity(1), Stamp{}); ok {
		t.Fatal("nil cache cannot hit")
	}
	c.Flush()
	if h, m, f := c.Stats(); h != 0 || m != 0 || f != 0 {
		t.Fatal("nil cache stats must be zero")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache Len must be zero")
	}
}
