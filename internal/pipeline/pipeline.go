// Package pipeline decomposes a RoVista measurement round into its five
// stages — test-prefix selection (§3.2), tNode qualification (§4.1), vVP
// discovery (§4.2), per-pair side-channel measurement (§4.3), and per-AS
// scoring (§6.2) — each behind a small interface so experiments and
// ablations can replace one stage without reimplementing the round.
//
// The package deliberately knows nothing about world construction: it
// depends only on the measurement-level types (inet, scan, detect), and the
// default stage implementations live next to the Runner in internal/core.
package pipeline

import (
	"net/netip"

	"github.com/netsec-lab/rovista/internal/detect"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/scan"
)

// RoundStatus is the typed health verdict of one measurement round. A
// degraded round (not enough qualified tNodes, or no AS with enough vVPs)
// reports *why* it carries no scores instead of silently returning zeros —
// downstream consumers must be able to tell "measured as unprotected" from
// "could not measure".
type RoundStatus uint8

// Round statuses.
const (
	// RoundOK: the round ran to completion with enough data to score.
	RoundOK RoundStatus = iota
	// RoundInsufficientTNodes: fewer qualified tNodes than the configured
	// minimum; no AS was scored.
	RoundInsufficientTNodes
	// RoundInsufficientVVPs: no AS retained enough usable vantage points
	// after the background cutoff (and any churn); no pairs were measured.
	RoundInsufficientVVPs
)

// String implements fmt.Stringer.
func (s RoundStatus) String() string {
	switch s {
	case RoundOK:
		return "ok"
	case RoundInsufficientTNodes:
		return "insufficient-tnodes"
	case RoundInsufficientVVPs:
		return "insufficient-vvps"
	default:
		return "unknown"
	}
}

// InsufficientData reports whether the round degraded below scorability.
func (s RoundStatus) InsufficientData() bool { return s != RoundOK }

// TestPrefixSource yields the exclusively-invalid prefixes that anchor a
// round (§3.2: announced at a collector, covered by a ROA, and with no
// covering valid announcement).
type TestPrefixSource interface {
	TestPrefixes() []netip.Prefix
}

// TNodeQualifier turns test prefixes into qualified tNodes (§4.1), including
// whatever false-tNode mitigation the implementation applies.
type TNodeQualifier interface {
	QualifyTNodes(prefixes []netip.Prefix) []scan.TNode
}

// VVPProvider yields the discovered vantage points (§4.2), before any
// background-rate cutoff — the round applies the §6.1 cutoff itself so the
// pre-cutoff population stays observable.
type VVPProvider interface {
	DiscoverVVPs() []scan.VVP
}

// Pair identifies one (vVP, tNode) measurement inside an AS. The indices
// are positions within the round's tNode list and the AS's capped vVP list;
// together with the round seed they determine the pair's derived seed, so a
// Pair is a complete, order-independent description of one unit of work.
type Pair struct {
	ASN      inet.ASN
	TNodeIdx int
	VVPIdx   int
	TNode    scan.TNode
	VVP      scan.VVP
}

// PairMeasurer runs one Figure-3 measurement round for a pair. A conforming
// implementation must be a pure function of the pair (plus whatever
// immutable state it closes over): calls must be safe to run concurrently
// and must return the same result regardless of execution order. The
// parallel executor relies on exactly that contract.
type PairMeasurer interface {
	MeasurePair(p Pair) detect.PairResult
}

// ASOutcome is a scorer's verdict for one AS.
type ASOutcome struct {
	// Score is the ROV protection score in [0, 100].
	Score float64
	// TNodesMeasured / TNodesFiltered give the score's denominator and
	// numerator.
	TNodesMeasured, TNodesFiltered int
	// Unanimous is false when at least one tNode was discarded because the
	// AS's vVPs disagreed.
	Unanimous bool
	// Verdicts maps each measured tNode address to whether it was judged
	// outbound-filtered.
	Verdicts map[netip.Addr]bool
	// ConsistentCells / TotalCells feed the round-wide consistency fraction
	// (the paper reports 95.1% of cells consistent).
	ConsistentCells, TotalCells int
}

// Scorer reduces one AS's pair results to a verdict. results is indexed
// [ti*nVVPs + vi], matching the pair grid the round laid out; a result's
// zero value never occurs (every cell is measured).
type Scorer interface {
	ScoreAS(asn inet.ASN, tnodes []scan.TNode, nVVPs int, results []detect.PairResult) ASOutcome
}

// UnanimityScorer implements the paper's §6.2 rule: a tNode counts for an AS
// only when every usable vVP verdict agrees; filtered tNodes with unanimous
// outbound-filtering verdicts form the score's numerator. Inbound-filtering
// and inconclusive outcomes carry no information about the vVP's AS (§3.3
// case b) and are ignored.
type UnanimityScorer struct{}

// ScoreAS implements Scorer.
func (UnanimityScorer) ScoreAS(asn inet.ASN, tnodes []scan.TNode, nVVPs int, results []detect.PairResult) ASOutcome {
	out := ASOutcome{Unanimous: true, Verdicts: make(map[netip.Addr]bool)}
	for ti, tn := range tnodes {
		filteredVotes, reachableVotes := 0, 0
		for vi := 0; vi < nVVPs; vi++ {
			res := results[ti*nVVPs+vi]
			if !res.Usable {
				continue
			}
			switch res.Outcome {
			case detect.OutboundFiltering:
				filteredVotes++
			case detect.NoFiltering:
				reachableVotes++
			}
		}
		if filteredVotes+reachableVotes == 0 {
			continue // nothing usable for this tNode
		}
		out.TotalCells++
		switch {
		case filteredVotes > 0 && reachableVotes == 0:
			out.ConsistentCells++
			out.TNodesMeasured++
			out.TNodesFiltered++
			out.Verdicts[tn.Addr] = true
		case reachableVotes > 0 && filteredVotes == 0:
			out.ConsistentCells++
			out.TNodesMeasured++
			out.Verdicts[tn.Addr] = false
		default:
			// Disagreement: discard the tNode for this AS.
			out.Unanimous = false
		}
	}
	if out.TNodesMeasured > 0 {
		out.Score = 100 * float64(out.TNodesFiltered) / float64(out.TNodesMeasured)
	}
	return out
}
