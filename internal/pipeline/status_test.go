package pipeline

import "testing"

func TestRoundStatusStrings(t *testing.T) {
	cases := []struct {
		s            RoundStatus
		want         string
		insufficient bool
	}{
		{RoundOK, "ok", false},
		{RoundInsufficientTNodes, "insufficient-tnodes", true},
		{RoundInsufficientVVPs, "insufficient-vvps", true},
		{RoundStatus(99), "unknown", true},
	}
	for _, tc := range cases {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("RoundStatus(%d).String() = %q, want %q", tc.s, got, tc.want)
		}
		if got := tc.s.InsufficientData(); got != tc.insufficient {
			t.Errorf("RoundStatus(%d).InsufficientData() = %v, want %v", tc.s, got, tc.insufficient)
		}
	}
}

func TestRoundStatusZeroValueIsOK(t *testing.T) {
	var s RoundStatus
	if s != RoundOK || s.InsufficientData() {
		t.Fatal("zero RoundStatus must mean a healthy round")
	}
}
