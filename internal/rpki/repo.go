package rpki

import (
	"fmt"
	"net/netip"

	"github.com/netsec-lab/rovista/internal/inet"
)

// Repository is one RIR's published object store: a self-signed trust
// anchor certificate, the CA certificates issued beneath it, and ROAs.
type Repository struct {
	RIR         RIR
	TrustAnchor *Certificate
	Certs       []*Certificate
	ROAs        []*ROA
}

// Authority wraps a Repository together with the private keys needed to
// issue new objects into it. Worlds and tests use it as the "RIR hosted
// portal" through which resource holders register ROAs.
type Authority struct {
	Repo *Repository
	keys map[string]*KeyPair
}

// NewAuthority creates an RIR authority whose trust anchor holds the given
// resources for the given validity window (simulation days).
func NewAuthority(rir RIR, seed int64, resources ResourceSet, notBefore, notAfter int) *Authority {
	subject := fmt.Sprintf("%s-trust-anchor", rir)
	key := NewKeyPair(seed, subject)
	ta := &Certificate{
		Subject:   subject,
		Serial:    1,
		Resources: resources,
		PublicKey: key.Public,
		NotBefore: notBefore,
		NotAfter:  notAfter,
	}
	SignCertificate(ta, subject, key) // self-signed
	return &Authority{
		Repo: &Repository{RIR: rir, TrustAnchor: ta},
		keys: map[string]*KeyPair{subject: key},
	}
}

// IssueCA issues a CA certificate for subject holding res, signed by the
// parent (the trust anchor when parentSubject is empty).
func (a *Authority) IssueCA(subject, parentSubject string, res ResourceSet, notBefore, notAfter int) (*Certificate, error) {
	if parentSubject == "" {
		parentSubject = a.Repo.TrustAnchor.Subject
	}
	parentKey, ok := a.keys[parentSubject]
	if !ok {
		return nil, fmt.Errorf("rpki: unknown parent %q", parentSubject)
	}
	if _, dup := a.keys[subject]; dup {
		return nil, fmt.Errorf("rpki: subject %q already exists", subject)
	}
	key := NewKeyPair(int64(len(a.keys))*7919+int64(a.Repo.RIR), subject)
	cert := &Certificate{
		Subject:   subject,
		Serial:    uint64(len(a.Repo.Certs) + 2),
		Resources: res,
		PublicKey: key.Public,
		NotBefore: notBefore,
		NotAfter:  notAfter,
	}
	SignCertificate(cert, parentSubject, parentKey)
	a.Repo.Certs = append(a.Repo.Certs, cert)
	a.keys[subject] = key
	return cert, nil
}

// IssueROA issues and publishes a ROA signed by caSubject's key.
func (a *Authority) IssueROA(caSubject string, asid inet.ASN, prefixes []ROAPrefix, notBefore, notAfter int) (*ROA, error) {
	key, ok := a.keys[caSubject]
	if !ok {
		return nil, fmt.Errorf("rpki: unknown CA %q", caSubject)
	}
	roa := &ROA{
		ASID:      asid,
		Prefixes:  prefixes,
		NotBefore: notBefore,
		NotAfter:  notAfter,
	}
	SignROA(roa, caSubject, key)
	a.Repo.ROAs = append(a.Repo.ROAs, roa)
	return roa, nil
}

// RevokeROA removes a published ROA (modelling expiry/withdrawal). It
// reports whether the ROA was present.
func (a *Authority) RevokeROA(roa *ROA) bool {
	for i, r := range a.Repo.ROAs {
		if r == roa {
			a.Repo.ROAs = append(a.Repo.ROAs[:i], a.Repo.ROAs[i+1:]...)
			return true
		}
	}
	return false
}

// ValidationError records one object rejected during relying-party
// validation and why.
type ValidationError struct {
	Object string
	Reason string
}

// Error implements error.
func (e ValidationError) Error() string { return fmt.Sprintf("%s: %s", e.Object, e.Reason) }

// RelyingParty fetches and cryptographically validates repository contents,
// producing the VRP set routers consume (the role Routinator plays in the
// paper's measurement loop).
type RelyingParty struct {
	// Day is the simulation day at which validity windows are evaluated.
	Day int
}

// Validate processes the given repositories and returns the resulting VRP
// set plus any per-object validation errors.
func (rp *RelyingParty) Validate(repos []*Repository) (*VRPSet, []ValidationError) {
	var errs []ValidationError
	var vrps []VRP
	for _, repo := range repos {
		ta := repo.TrustAnchor
		if ta == nil {
			errs = append(errs, ValidationError{repo.RIR.String(), "missing trust anchor"})
			continue
		}
		if !ta.VerifySignature(ta.PublicKey) {
			errs = append(errs, ValidationError{ta.Subject, "trust anchor self-signature invalid"})
			continue
		}
		if !ta.ValidAt(rp.Day) {
			errs = append(errs, ValidationError{ta.Subject, "trust anchor expired"})
			continue
		}
		// Validate CA certificates to a fixpoint so chains of arbitrary
		// depth resolve regardless of publication order.
		valid := map[string]*Certificate{ta.Subject: ta}
		pending := append([]*Certificate(nil), repo.Certs...)
		for progress := true; progress; {
			progress = false
			var next []*Certificate
			for _, c := range pending {
				issuer, ok := valid[c.IssuerSubject]
				if !ok {
					next = append(next, c)
					continue
				}
				progress = true
				switch {
				case !c.VerifySignature(issuer.PublicKey):
					errs = append(errs, ValidationError{c.Subject, "bad signature"})
				case !c.ValidAt(rp.Day):
					errs = append(errs, ValidationError{c.Subject, "outside validity window"})
				case !issuer.Resources.ContainsAll(c.Resources):
					errs = append(errs, ValidationError{c.Subject, "resources exceed issuer (RFC 6487)"})
				default:
					valid[c.Subject] = c
				}
			}
			pending = next
		}
		for _, c := range pending {
			errs = append(errs, ValidationError{c.Subject, "issuer not found or invalid"})
		}
		// Validate ROAs against their (validated) signing CA.
		for _, roa := range repo.ROAs {
			signer, ok := valid[roa.SignerSubject]
			if !ok {
				errs = append(errs, ValidationError{roaName(roa), "signer not validated"})
				continue
			}
			switch {
			case !roa.wellFormed():
				errs = append(errs, ValidationError{roaName(roa), "malformed (RFC 6482)"})
			case !roa.VerifySignature(signer.PublicKey):
				errs = append(errs, ValidationError{roaName(roa), "bad signature"})
			case !roa.ValidAt(rp.Day):
				errs = append(errs, ValidationError{roaName(roa), "outside validity window"})
			case !signer.Resources.ContainsAll(roa.resources()):
				errs = append(errs, ValidationError{roaName(roa), "prefixes exceed signer resources"})
			default:
				for _, p := range roa.Prefixes {
					vrps = append(vrps, VRP{ASN: roa.ASID, Prefix: p.Prefix.Masked(), MaxLength: p.MaxLength})
				}
			}
		}
	}
	return NewVRPSet(vrps), errs
}

func roaName(r *ROA) string {
	if len(r.Prefixes) > 0 {
		return fmt.Sprintf("ROA(%v->%v)", r.Prefixes[0].Prefix, r.ASID)
	}
	return fmt.Sprintf("ROA(empty->%v)", r.ASID)
}

// Ensure netip is referenced (prefix type used across the API).
var _ = netip.Prefix{}
