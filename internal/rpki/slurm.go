package rpki

import (
	"net/netip"

	"github.com/netsec-lab/rovista/internal/inet"
)

// SLURM is a Simplified Local Internet Number Resource Management file
// (RFC 8416): locally-scoped filters that remove VRPs and assertions that
// add them. The paper observes operators using SLURM to keep accepting
// specific RPKI-invalid routes (§7.1).
type SLURM struct {
	PrefixFilters    []PrefixFilter
	PrefixAssertions []PrefixAssertion
}

// PrefixFilter removes matching VRPs from the validated set. A zero ASN
// matches any origin; an invalid prefix matches any prefix.
type PrefixFilter struct {
	Prefix netip.Prefix // optional; zero value matches all prefixes
	ASN    inet.ASN     // optional; 0 matches all ASNs
}

func (f PrefixFilter) matches(v VRP) bool {
	if f.ASN != 0 && f.ASN != v.ASN {
		return false
	}
	if f.Prefix.IsValid() {
		// RFC 8416: the filter prefix must cover the VRP prefix.
		if !(f.Prefix.Contains(v.Prefix.Addr()) && f.Prefix.Bits() <= v.Prefix.Bits()) {
			return false
		}
	}
	return true
}

// PrefixAssertion locally adds a VRP to the validated set.
type PrefixAssertion struct {
	Prefix    netip.Prefix
	ASN       inet.ASN
	MaxLength int // 0 means the prefix length
}

// Apply returns a new VRPSet with the SLURM filters and assertions applied.
func (s *SLURM) Apply(in *VRPSet) *VRPSet {
	if s == nil || (len(s.PrefixFilters) == 0 && len(s.PrefixAssertions) == 0) {
		return in
	}
	var out []VRP
outer:
	for _, v := range in.All() {
		for _, f := range s.PrefixFilters {
			if f.matches(v) {
				continue outer
			}
		}
		out = append(out, v)
	}
	for _, a := range s.PrefixAssertions {
		ml := a.MaxLength
		if ml == 0 {
			ml = a.Prefix.Bits()
		}
		out = append(out, VRP{ASN: a.ASN, Prefix: a.Prefix.Masked(), MaxLength: ml})
	}
	return NewVRPSet(out)
}
