package rpki

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"github.com/netsec-lab/rovista/internal/inet"
)

func randomVRP(rng *rand.Rand) VRP {
	plen := 8 + rng.Intn(17) // /8../24
	addr := inet.V4(uint32(rng.Intn(64)) << 24)
	p, _ := addr.Prefix(plen)
	return VRP{
		ASN:       inet.ASN(1 + rng.Intn(50)),
		Prefix:    p,
		MaxLength: plen + rng.Intn(33-plen),
	}
}

func randomQuery(rng *rand.Rand) (netip.Prefix, inet.ASN) {
	plen := 8 + rng.Intn(25)
	addr := inet.V4(rng.Uint32() & 0x3fffffff)
	p, _ := addr.Prefix(plen)
	return p, inet.ASN(1 + rng.Intn(50))
}

// TestValidationMonotonicityProperty: adding VRPs can only move an outcome
// "toward knowledge" — NotFound may become Valid or Invalid, Invalid may
// become Valid (a matching VRP appeared), but Valid can never regress and
// nothing returns to NotFound.
func TestValidationMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := make([]VRP, rng.Intn(20))
		for i := range base {
			base[i] = randomVRP(rng)
		}
		extra := make([]VRP, 1+rng.Intn(10))
		for i := range extra {
			extra[i] = randomVRP(rng)
		}
		small := NewVRPSet(base)
		big := NewVRPSet(append(append([]VRP{}, base...), extra...))
		for q := 0; q < 50; q++ {
			p, origin := randomQuery(rng)
			before := small.Validate(p, origin)
			after := big.Validate(p, origin)
			switch before {
			case Valid:
				if after != Valid {
					t.Logf("Valid regressed to %v for %v/%v", after, p, origin)
					return false
				}
			case Invalid:
				if after == NotFound {
					t.Logf("Invalid returned to NotFound for %v/%v", p, origin)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestValidationAgreesWithBruteForce: the trie-backed validator must agree
// with a direct scan of the VRP list.
func TestValidationAgreesWithBruteForce(t *testing.T) {
	brute := func(vrps []VRP, p netip.Prefix, origin inet.ASN) Validity {
		covered, matched := false, false
		for _, v := range vrps {
			if v.Prefix.Contains(p.Masked().Addr()) && v.Prefix.Bits() <= p.Bits() {
				covered = true
				if v.ASN == origin && p.Bits() <= v.MaxLength {
					matched = true
				}
			}
		}
		switch {
		case matched:
			return Valid
		case covered:
			return Invalid
		default:
			return NotFound
		}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vrps := make([]VRP, rng.Intn(30))
		for i := range vrps {
			vrps[i] = randomVRP(rng)
		}
		set := NewVRPSet(vrps)
		for q := 0; q < 60; q++ {
			p, origin := randomQuery(rng)
			if set.Validate(p, origin) != brute(vrps, p, origin) {
				t.Logf("disagreement for %v origin %v", p, origin)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSLURMFilterNeverAddsValidity: a filter-only SLURM can only remove
// knowledge — Valid may become Invalid (its matching VRP was filtered but a
// covering one remains) or NotFound; nothing becomes Valid.
func TestSLURMFilterNeverAddsValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vrps := make([]VRP, 5+rng.Intn(20))
		for i := range vrps {
			vrps[i] = randomVRP(rng)
		}
		base := NewVRPSet(vrps)
		s := &SLURM{}
		for i := 0; i < 1+rng.Intn(3); i++ {
			v := vrps[rng.Intn(len(vrps))]
			s.PrefixFilters = append(s.PrefixFilters, PrefixFilter{Prefix: v.Prefix})
		}
		filtered := s.Apply(base)
		for q := 0; q < 40; q++ {
			p, origin := randomQuery(rng)
			before := base.Validate(p, origin)
			after := filtered.Validate(p, origin)
			if before != Valid && after == Valid {
				t.Logf("filter conjured Valid for %v/%v", p, origin)
				return false
			}
			if before == NotFound && after != NotFound {
				t.Logf("filter conjured coverage for %v/%v", p, origin)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRelyingPartyDeterministic: validation output is a pure function of
// the repositories and the day.
func TestRelyingPartyDeterministic(t *testing.T) {
	a := NewAuthority(ARIN, 5, ResourceSet{
		Prefixes: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
		ASNs:     []ASNRange{{1, 1000}},
	}, 0, 100)
	for i := 0; i < 10; i++ {
		sub := netip.PrefixFrom(inet.V4(uint32(10)<<24|uint32(i)<<16), 16)
		name := sub.String()
		a.IssueCA(name, "", ResourceSet{Prefixes: []netip.Prefix{sub}}, 0, 100)
		a.IssueROA(name, inet.ASN(i+1), []ROAPrefix{{Prefix: sub, MaxLength: 24}}, i, 100)
	}
	for day := 0; day <= 12; day += 3 {
		rp := &RelyingParty{Day: day}
		v1, _ := rp.Validate([]*Repository{a.Repo})
		v2, _ := rp.Validate([]*Repository{a.Repo})
		all1, all2 := v1.All(), v2.All()
		if len(all1) != len(all2) {
			t.Fatalf("day %d: nondeterministic VRP count", day)
		}
		for i := range all1 {
			if all1[i] != all2[i] {
				t.Fatalf("day %d: VRP %d differs", day, i)
			}
		}
	}
	// VRP count grows with the day (ROAs phase in).
	rp0 := &RelyingParty{Day: 0}
	rp9 := &RelyingParty{Day: 9}
	v0, _ := rp0.Validate([]*Repository{a.Repo})
	v9, _ := rp9.Validate([]*Repository{a.Repo})
	if v9.Len() <= v0.Len() {
		t.Fatalf("VRPs did not grow: %d -> %d", v0.Len(), v9.Len())
	}
}
