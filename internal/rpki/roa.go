package rpki

import (
	"bytes"
	"encoding/binary"
	"net/netip"

	"github.com/netsec-lab/rovista/internal/inet"
)

// ROAPrefix is one prefix entry inside a ROA: the prefix itself plus the
// maximum length the authorized AS may announce (RFC 6482).
type ROAPrefix struct {
	Prefix    netip.Prefix
	MaxLength int
}

// ROA is a Route Origin Authorization: it authorizes ASID to originate the
// listed prefixes. It is signed by the end-entity key of the issuing CA
// certificate, which in this simplified profile is the CA certificate named
// by SignerSubject.
type ROA struct {
	ASID     inet.ASN
	Prefixes []ROAPrefix

	// Validity window in simulation days (inclusive).
	NotBefore, NotAfter int

	SignerSubject string
	Signature     []byte
}

func (r *ROA) encodeTBS() []byte {
	var b bytes.Buffer
	writeStr(&b, "ROA")
	binary.Write(&b, binary.BigEndian, uint32(r.ASID))
	binary.Write(&b, binary.BigEndian, int64(r.NotBefore))
	binary.Write(&b, binary.BigEndian, int64(r.NotAfter))
	writeStr(&b, r.SignerSubject)
	binary.Write(&b, binary.BigEndian, uint32(len(r.Prefixes)))
	for _, p := range r.Prefixes {
		writePrefix(&b, p.Prefix)
		b.WriteByte(byte(p.MaxLength))
	}
	return b.Bytes()
}

// SignROA signs the ROA with the CA's key.
func SignROA(r *ROA, signerSubject string, key *KeyPair) {
	r.SignerSubject = signerSubject
	r.Signature = key.Sign(r.encodeTBS())
}

// VerifySignature checks the ROA signature against the signer's public key.
func (r *ROA) VerifySignature(pub []byte) bool {
	return len(pub) == 32 && verify(pub, r.encodeTBS(), r.Signature)
}

// ValidAt reports whether day falls inside the ROA's validity window.
func (r *ROA) ValidAt(day int) bool {
	return day >= r.NotBefore && day <= r.NotAfter
}

// resources returns the ResourceSet a signer must hold to issue this ROA.
func (r *ROA) resources() ResourceSet {
	var rs ResourceSet
	for _, p := range r.Prefixes {
		rs.Prefixes = append(rs.Prefixes, p.Prefix)
	}
	return rs
}

// wellFormed checks the RFC 6482 structural constraints.
func (r *ROA) wellFormed() bool {
	if len(r.Prefixes) == 0 {
		return false
	}
	for _, p := range r.Prefixes {
		if !p.Prefix.IsValid() || !p.Prefix.Addr().Is4() {
			return false
		}
		if p.MaxLength < p.Prefix.Bits() || p.MaxLength > 32 {
			return false
		}
	}
	return true
}
