package rpki

import (
	"net/netip"
	"testing"

	"github.com/netsec-lab/rovista/internal/inet"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func testAuthority(t *testing.T) *Authority {
	t.Helper()
	res := ResourceSet{
		Prefixes: []netip.Prefix{pfx("10.0.0.0/8"), pfx("172.16.0.0/12")},
		ASNs:     []ASNRange{{1, 65000}},
	}
	return NewAuthority(RIPE, 42, res, 0, 1000)
}

func TestTrustAnchorSelfSigned(t *testing.T) {
	a := testAuthority(t)
	ta := a.Repo.TrustAnchor
	if !ta.VerifySignature(ta.PublicKey) {
		t.Fatal("trust anchor self-signature should verify")
	}
	if ta.IssuerSubject != ta.Subject {
		t.Fatal("trust anchor must be self-issued")
	}
}

func TestIssueCAAndValidate(t *testing.T) {
	a := testAuthority(t)
	res := ResourceSet{Prefixes: []netip.Prefix{pfx("10.1.0.0/16")}}
	cert, err := a.IssueCA("isp-1", "", res, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.VerifySignature(a.Repo.TrustAnchor.PublicKey) {
		t.Fatal("issued cert should verify against TA key")
	}

	rp := &RelyingParty{Day: 100}
	_, errs := rp.Validate([]*Repository{a.Repo})
	if len(errs) != 0 {
		t.Fatalf("unexpected validation errors: %v", errs)
	}
}

func TestIssueCADuplicateSubject(t *testing.T) {
	a := testAuthority(t)
	res := ResourceSet{Prefixes: []netip.Prefix{pfx("10.1.0.0/16")}}
	if _, err := a.IssueCA("dup", "", res, 0, 500); err != nil {
		t.Fatal(err)
	}
	if _, err := a.IssueCA("dup", "", res, 0, 500); err == nil {
		t.Fatal("expected duplicate-subject error")
	}
}

func TestIssueCAUnknownParent(t *testing.T) {
	a := testAuthority(t)
	if _, err := a.IssueCA("x", "ghost", ResourceSet{}, 0, 1); err == nil {
		t.Fatal("expected unknown-parent error")
	}
}

func TestROAEndToEnd(t *testing.T) {
	a := testAuthority(t)
	res := ResourceSet{Prefixes: []netip.Prefix{pfx("10.1.0.0/16")}}
	if _, err := a.IssueCA("isp-1", "", res, 0, 500); err != nil {
		t.Fatal(err)
	}
	_, err := a.IssueROA("isp-1", 64500, []ROAPrefix{{pfx("10.1.0.0/16"), 24}}, 0, 500)
	if err != nil {
		t.Fatal(err)
	}

	rp := &RelyingParty{Day: 10}
	vrps, errs := rp.Validate([]*Repository{a.Repo})
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if vrps.Len() != 1 {
		t.Fatalf("got %d VRPs, want 1", vrps.Len())
	}

	// RFC 6811 decision table.
	cases := []struct {
		p      string
		origin inet.ASN
		want   Validity
	}{
		{"10.1.0.0/16", 64500, Valid},
		{"10.1.2.0/24", 64500, Valid},   // within maxLength
		{"10.1.2.0/25", 64500, Invalid}, // too specific
		{"10.1.0.0/16", 64501, Invalid}, // wrong origin
		{"10.2.0.0/16", 64500, NotFound},
	}
	for _, c := range cases {
		if got := vrps.Validate(pfx(c.p), c.origin); got != c.want {
			t.Errorf("Validate(%s, %v) = %v, want %v", c.p, c.origin, got, c.want)
		}
	}
}

func TestROAResourceContainmentEnforced(t *testing.T) {
	a := testAuthority(t)
	res := ResourceSet{Prefixes: []netip.Prefix{pfx("10.1.0.0/16")}}
	if _, err := a.IssueCA("isp-1", "", res, 0, 500); err != nil {
		t.Fatal(err)
	}
	// ROA for space the CA does not hold must be rejected at validation.
	if _, err := a.IssueROA("isp-1", 64500, []ROAPrefix{{pfx("192.168.0.0/16"), 24}}, 0, 500); err != nil {
		t.Fatal(err)
	}
	rp := &RelyingParty{Day: 10}
	vrps, errs := rp.Validate([]*Repository{a.Repo})
	if vrps.Len() != 0 {
		t.Fatalf("over-claiming ROA produced VRPs: %v", vrps.All())
	}
	if len(errs) == 0 {
		t.Fatal("expected a validation error for over-claiming ROA")
	}
}

func TestCAResourceContainmentEnforced(t *testing.T) {
	a := testAuthority(t)
	// CA claiming space outside the TA's holdings.
	over := ResourceSet{Prefixes: []netip.Prefix{pfx("8.0.0.0/8")}}
	if _, err := a.IssueCA("greedy", "", over, 0, 500); err != nil {
		t.Fatal(err)
	}
	rp := &RelyingParty{Day: 10}
	_, errs := rp.Validate([]*Repository{a.Repo})
	found := false
	for _, e := range errs {
		if e.Object == "greedy" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected containment error for greedy CA, got %v", errs)
	}
}

func TestExpiredObjectsRejected(t *testing.T) {
	a := testAuthority(t)
	res := ResourceSet{Prefixes: []netip.Prefix{pfx("10.1.0.0/16")}}
	a.IssueCA("isp-1", "", res, 0, 500)
	a.IssueROA("isp-1", 64500, []ROAPrefix{{pfx("10.1.0.0/16"), 16}}, 0, 50)

	rp := &RelyingParty{Day: 100} // ROA expired at day 50
	vrps, errs := rp.Validate([]*Repository{a.Repo})
	if vrps.Len() != 0 {
		t.Fatal("expired ROA should produce no VRPs")
	}
	if len(errs) == 0 {
		t.Fatal("expected an expiry error")
	}
}

func TestTamperedROARejected(t *testing.T) {
	a := testAuthority(t)
	res := ResourceSet{Prefixes: []netip.Prefix{pfx("10.1.0.0/16")}}
	a.IssueCA("isp-1", "", res, 0, 500)
	roa, _ := a.IssueROA("isp-1", 64500, []ROAPrefix{{pfx("10.1.0.0/16"), 16}}, 0, 500)
	roa.ASID = 666 // attacker flips the origin after signing

	rp := &RelyingParty{Day: 10}
	vrps, errs := rp.Validate([]*Repository{a.Repo})
	if vrps.Len() != 0 {
		t.Fatal("tampered ROA must not yield VRPs")
	}
	if len(errs) == 0 {
		t.Fatal("expected signature error")
	}
}

func TestChainedCAs(t *testing.T) {
	a := testAuthority(t)
	a.IssueCA("lir", "", ResourceSet{Prefixes: []netip.Prefix{pfx("10.0.0.0/9")}}, 0, 500)
	a.IssueCA("customer", "lir", ResourceSet{Prefixes: []netip.Prefix{pfx("10.64.0.0/16")}}, 0, 500)
	a.IssueROA("customer", 65001, []ROAPrefix{{pfx("10.64.0.0/16"), 20}}, 0, 500)

	rp := &RelyingParty{Day: 1}
	vrps, errs := rp.Validate([]*Repository{a.Repo})
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if got := vrps.Validate(pfx("10.64.0.0/18"), 65001); got != Valid {
		t.Fatalf("chained validation = %v, want valid", got)
	}
}

func TestRevokeROA(t *testing.T) {
	a := testAuthority(t)
	a.IssueCA("isp-1", "", ResourceSet{Prefixes: []netip.Prefix{pfx("10.1.0.0/16")}}, 0, 500)
	roa, _ := a.IssueROA("isp-1", 64500, []ROAPrefix{{pfx("10.1.0.0/16"), 16}}, 0, 500)
	if !a.RevokeROA(roa) {
		t.Fatal("revoke should succeed")
	}
	if a.RevokeROA(roa) {
		t.Fatal("double revoke should fail")
	}
	rp := &RelyingParty{Day: 1}
	vrps, _ := rp.Validate([]*Repository{a.Repo})
	if vrps.Len() != 0 {
		t.Fatal("revoked ROA should not yield VRPs")
	}
}

func TestMalformedROA(t *testing.T) {
	a := testAuthority(t)
	a.IssueCA("isp-1", "", ResourceSet{Prefixes: []netip.Prefix{pfx("10.1.0.0/16")}}, 0, 500)
	// maxLength shorter than the prefix is malformed per RFC 6482.
	a.IssueROA("isp-1", 64500, []ROAPrefix{{pfx("10.1.0.0/16"), 8}}, 0, 500)
	rp := &RelyingParty{Day: 1}
	vrps, errs := rp.Validate([]*Repository{a.Repo})
	if vrps.Len() != 0 || len(errs) == 0 {
		t.Fatalf("malformed ROA handled wrong: %d vrps, errs=%v", vrps.Len(), errs)
	}
}

func TestMultipleRepositories(t *testing.T) {
	a1 := NewAuthority(RIPE, 1, ResourceSet{Prefixes: []netip.Prefix{pfx("10.0.0.0/8")}, ASNs: []ASNRange{{1, 100000}}}, 0, 999)
	a2 := NewAuthority(ARIN, 2, ResourceSet{Prefixes: []netip.Prefix{pfx("20.0.0.0/8")}, ASNs: []ASNRange{{1, 100000}}}, 0, 999)
	a1.IssueCA("e1", "", ResourceSet{Prefixes: []netip.Prefix{pfx("10.1.0.0/16")}}, 0, 999)
	a2.IssueCA("e2", "", ResourceSet{Prefixes: []netip.Prefix{pfx("20.1.0.0/16")}}, 0, 999)
	a1.IssueROA("e1", 100, []ROAPrefix{{pfx("10.1.0.0/16"), 16}}, 0, 999)
	a2.IssueROA("e2", 200, []ROAPrefix{{pfx("20.1.0.0/16"), 16}}, 0, 999)

	rp := &RelyingParty{Day: 5}
	vrps, errs := rp.Validate([]*Repository{a1.Repo, a2.Repo})
	if len(errs) != 0 || vrps.Len() != 2 {
		t.Fatalf("multi-repo validation: %d vrps, errs=%v", vrps.Len(), errs)
	}
}

func TestVRPSetDedupe(t *testing.T) {
	v := VRP{ASN: 1, Prefix: pfx("10.0.0.0/8"), MaxLength: 8}
	s := NewVRPSet([]VRP{v, v, v})
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after dedupe", s.Len())
	}
}

func TestValidityString(t *testing.T) {
	if Valid.String() != "valid" || Invalid.String() != "invalid" || NotFound.String() != "not-found" {
		t.Fatal("Validity strings wrong")
	}
}

func TestRIRString(t *testing.T) {
	want := map[RIR]string{APNIC: "APNIC", RIPE: "RIPE NCC", ARIN: "ARIN", AFRINIC: "AFRINIC", LACNIC: "LACNIC"}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
}

func TestSLURMFilter(t *testing.T) {
	base := NewVRPSet([]VRP{
		{ASN: 100, Prefix: pfx("10.1.0.0/16"), MaxLength: 24},
		{ASN: 200, Prefix: pfx("10.2.0.0/16"), MaxLength: 16},
	})
	s := &SLURM{PrefixFilters: []PrefixFilter{{Prefix: pfx("10.1.0.0/16")}}}
	out := s.Apply(base)
	if out.Len() != 1 {
		t.Fatalf("Len = %d, want 1", out.Len())
	}
	if out.Validate(pfx("10.1.0.0/16"), 100) != NotFound {
		t.Fatal("filtered VRP should be gone")
	}
	if out.Validate(pfx("10.2.0.0/16"), 200) != Valid {
		t.Fatal("unrelated VRP should survive")
	}
}

func TestSLURMFilterByASN(t *testing.T) {
	base := NewVRPSet([]VRP{
		{ASN: 100, Prefix: pfx("10.1.0.0/16"), MaxLength: 16},
		{ASN: 200, Prefix: pfx("10.2.0.0/16"), MaxLength: 16},
	})
	s := &SLURM{PrefixFilters: []PrefixFilter{{ASN: 200}}}
	out := s.Apply(base)
	if out.Len() != 1 || out.Validate(pfx("10.2.0.0/16"), 200) != NotFound {
		t.Fatal("ASN filter failed")
	}
}

func TestSLURMAssertion(t *testing.T) {
	base := NewVRPSet(nil)
	s := &SLURM{PrefixAssertions: []PrefixAssertion{{Prefix: pfx("192.0.2.0/24"), ASN: 300}}}
	out := s.Apply(base)
	if out.Validate(pfx("192.0.2.0/24"), 300) != Valid {
		t.Fatal("asserted VRP should validate")
	}
	if out.Validate(pfx("192.0.2.0/25"), 300) != Invalid {
		t.Fatal("maxLength should default to prefix length")
	}
}

func TestSLURMNil(t *testing.T) {
	base := NewVRPSet([]VRP{{ASN: 1, Prefix: pfx("10.0.0.0/8"), MaxLength: 8}})
	var s *SLURM
	if got := s.Apply(base); got != base {
		t.Fatal("nil SLURM should be identity")
	}
}

func TestResourceSetContainment(t *testing.T) {
	s := ResourceSet{
		Prefixes: []netip.Prefix{pfx("10.0.0.0/8")},
		ASNs:     []ASNRange{{100, 200}},
	}
	if !s.ContainsPrefix(pfx("10.5.0.0/16")) {
		t.Fatal("should contain sub-prefix")
	}
	if s.ContainsPrefix(pfx("11.0.0.0/8")) {
		t.Fatal("should not contain disjoint prefix")
	}
	if s.ContainsPrefix(pfx("0.0.0.0/0")) {
		t.Fatal("should not contain covering prefix")
	}
	if !s.ContainsASN(150) || s.ContainsASN(99) || s.ContainsASN(201) {
		t.Fatal("ASN range containment wrong")
	}
	if !s.ContainsAll(ResourceSet{Prefixes: []netip.Prefix{pfx("10.1.0.0/16")}, ASNs: []ASNRange{{120, 130}}}) {
		t.Fatal("ContainsAll should hold")
	}
	if s.ContainsAll(ResourceSet{ASNs: []ASNRange{{150, 250}}}) {
		t.Fatal("partially-out-of-range ASNs must fail containment")
	}
}
