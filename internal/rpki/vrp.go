package rpki

import (
	"crypto/ed25519"
	"fmt"
	"net/netip"
	"sort"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rib"
)

func verify(pub, msg, sig []byte) bool {
	return ed25519.Verify(ed25519.PublicKey(pub), msg, sig)
}

// VRP is a Validated ROA Payload: the (ASN, prefix, max length) tuple the
// relying party hands to routers.
type VRP struct {
	ASN       inet.ASN
	Prefix    netip.Prefix
	MaxLength int
}

// String implements fmt.Stringer.
func (v VRP) String() string {
	return fmt.Sprintf("%v-%d => %v", v.Prefix, v.MaxLength, v.ASN)
}

// Validity is the RFC 6811 route-origin validation outcome.
type Validity uint8

// RFC 6811 validation states.
const (
	// NotFound: no VRP covers the announced prefix.
	NotFound Validity = iota
	// Valid: some covering VRP matches both origin and length constraint.
	Valid
	// Invalid: covered by at least one VRP but matched by none.
	Invalid
)

// String implements fmt.Stringer.
func (v Validity) String() string {
	switch v {
	case NotFound:
		return "not-found"
	case Valid:
		return "valid"
	case Invalid:
		return "invalid"
	default:
		return fmt.Sprintf("Validity(%d)", uint8(v))
	}
}

// VRPSet indexes VRPs for origin validation. Lookups use a prefix trie so
// covering checks are O(prefix length).
type VRPSet struct {
	trie *rib.Trie[[]VRP]
	all  []VRP
}

// NewVRPSet builds an index over the given VRPs.
func NewVRPSet(vrps []VRP) *VRPSet {
	s := &VRPSet{trie: rib.NewTrie[[]VRP]()}
	for _, v := range vrps {
		s.add(v)
	}
	return s
}

func (s *VRPSet) add(v VRP) {
	v.Prefix = v.Prefix.Masked()
	existing, _ := s.trie.Get(v.Prefix)
	for _, e := range existing {
		if e == v {
			return // dedupe
		}
	}
	s.trie.Insert(v.Prefix, append(existing, v))
	s.all = append(s.all, v)
}

// Len returns the number of VRPs in the set.
func (s *VRPSet) Len() int { return len(s.all) }

// All returns the VRPs in deterministic order.
func (s *VRPSet) All() []VRP {
	out := append([]VRP(nil), s.all...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix != out[j].Prefix {
			return out[i].Prefix.String() < out[j].Prefix.String()
		}
		if out[i].ASN != out[j].ASN {
			return out[i].ASN < out[j].ASN
		}
		return out[i].MaxLength < out[j].MaxLength
	})
	return out
}

// Covering returns all VRPs whose prefix covers p.
func (s *VRPSet) Covering(p netip.Prefix) []VRP {
	var out []VRP
	for _, e := range s.trie.Covering(p) {
		out = append(out, e.Value...)
	}
	return out
}

// Validate implements RFC 6811 origin validation for an announcement of
// prefix p originated by origin.
func (s *VRPSet) Validate(p netip.Prefix, origin inet.ASN) Validity {
	covering := s.Covering(p)
	if len(covering) == 0 {
		return NotFound
	}
	for _, v := range covering {
		if v.ASN == origin && p.Bits() <= v.MaxLength {
			return Valid
		}
	}
	return Invalid
}

// CoversPrefix reports whether any VRP covers p (i.e. validation would not
// return NotFound).
func (s *VRPSet) CoversPrefix(p netip.Prefix) bool {
	return len(s.Covering(p)) > 0
}
