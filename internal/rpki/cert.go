// Package rpki implements the Resource Public Key Infrastructure substrate:
// trust anchors, resource (CA) certificates, Route Origin Authorizations,
// relying-party validation producing Validated ROA Payloads (VRPs), RFC 6811
// origin validation, and RFC 8416 SLURM local exceptions.
//
// Objects carry real Ed25519 signatures over a deterministic binary encoding
// so the relying party performs genuine cryptographic validation, including
// resource-containment (RFC 6487 §7) checks along the chain to one of the
// five RIR trust anchors.
package rpki

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"net/netip"

	"github.com/netsec-lab/rovista/internal/inet"
)

// RIR identifies one of the five Regional Internet Registries, each of which
// operates its own trust anchor and repository.
type RIR uint8

// The five RIRs.
const (
	APNIC RIR = iota
	RIPE
	ARIN
	AFRINIC
	LACNIC
)

// AllRIRs lists every RIR in a stable order.
var AllRIRs = []RIR{APNIC, RIPE, ARIN, AFRINIC, LACNIC}

// String implements fmt.Stringer.
func (r RIR) String() string {
	switch r {
	case APNIC:
		return "APNIC"
	case RIPE:
		return "RIPE NCC"
	case ARIN:
		return "ARIN"
	case AFRINIC:
		return "AFRINIC"
	case LACNIC:
		return "LACNIC"
	default:
		return fmt.Sprintf("RIR(%d)", uint8(r))
	}
}

// KeyPair is an Ed25519 key pair used to sign RPKI objects.
type KeyPair struct {
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// NewKeyPair deterministically derives a key pair from a 32-byte seed
// expansion of the given values, keeping simulations reproducible.
func NewKeyPair(seed int64, discriminator string) *KeyPair {
	var buf bytes.Buffer
	binary.Write(&buf, binary.BigEndian, seed)
	buf.WriteString(discriminator)
	raw := buf.Bytes()
	s := make([]byte, ed25519.SeedSize)
	for i, b := range raw {
		s[i%ed25519.SeedSize] ^= b + byte(i)
	}
	priv := ed25519.NewKeyFromSeed(s)
	return &KeyPair{Public: priv.Public().(ed25519.PublicKey), private: priv}
}

// Sign signs msg with the private key.
func (k *KeyPair) Sign(msg []byte) []byte { return ed25519.Sign(k.private, msg) }

// ASNRange is an inclusive range of AS numbers.
type ASNRange struct {
	Lo, Hi inet.ASN
}

// Contains reports whether a falls in the range.
func (r ASNRange) Contains(a inet.ASN) bool { return a >= r.Lo && a <= r.Hi }

// ResourceSet is the set of Internet Number Resources bound to a
// certificate: IPv4 prefixes and ASN ranges.
type ResourceSet struct {
	Prefixes []netip.Prefix
	ASNs     []ASNRange
}

// ContainsPrefix reports whether p is covered by some prefix in the set.
func (s ResourceSet) ContainsPrefix(p netip.Prefix) bool {
	for _, own := range s.Prefixes {
		if own.Contains(p.Masked().Addr()) && own.Bits() <= p.Bits() {
			return true
		}
	}
	return false
}

// ContainsASN reports whether a is covered by some range in the set.
func (s ResourceSet) ContainsASN(a inet.ASN) bool {
	for _, r := range s.ASNs {
		if r.Contains(a) {
			return true
		}
	}
	return false
}

// ContainsAll reports whether every resource in o is contained in s
// (the RFC 6487 issuance requirement).
func (s ResourceSet) ContainsAll(o ResourceSet) bool {
	for _, p := range o.Prefixes {
		if !s.ContainsPrefix(p) {
			return false
		}
	}
	for _, r := range o.ASNs {
		if !s.ContainsASN(r.Lo) || !s.ContainsASN(r.Hi) {
			return false
		}
	}
	return true
}

// Certificate is a simplified RPKI resource certificate: it binds a
// ResourceSet to a public key and is signed by its issuer (or self-signed
// for trust anchors).
type Certificate struct {
	Subject   string
	Serial    uint64
	Resources ResourceSet
	PublicKey ed25519.PublicKey

	// Validity window in simulation days (inclusive).
	NotBefore, NotAfter int

	IssuerSubject string
	Signature     []byte
}

// encodeTBS produces the deterministic "to-be-signed" byte encoding.
func (c *Certificate) encodeTBS() []byte {
	var b bytes.Buffer
	writeStr(&b, "CERT")
	writeStr(&b, c.Subject)
	binary.Write(&b, binary.BigEndian, c.Serial)
	binary.Write(&b, binary.BigEndian, int64(c.NotBefore))
	binary.Write(&b, binary.BigEndian, int64(c.NotAfter))
	writeStr(&b, c.IssuerSubject)
	b.Write(c.PublicKey)
	binary.Write(&b, binary.BigEndian, uint32(len(c.Resources.Prefixes)))
	for _, p := range c.Resources.Prefixes {
		writePrefix(&b, p)
	}
	binary.Write(&b, binary.BigEndian, uint32(len(c.Resources.ASNs)))
	for _, r := range c.Resources.ASNs {
		binary.Write(&b, binary.BigEndian, uint32(r.Lo))
		binary.Write(&b, binary.BigEndian, uint32(r.Hi))
	}
	return b.Bytes()
}

func writeStr(b *bytes.Buffer, s string) {
	binary.Write(b, binary.BigEndian, uint32(len(s)))
	b.WriteString(s)
}

func writePrefix(b *bytes.Buffer, p netip.Prefix) {
	a := p.Masked().Addr().As4()
	b.Write(a[:])
	b.WriteByte(byte(p.Bits()))
}

// SignCertificate signs cert with the issuer's key, recording the issuer
// subject. For self-signed (trust anchor) certificates pass the cert's own
// subject and key.
func SignCertificate(cert *Certificate, issuerSubject string, issuerKey *KeyPair) {
	cert.IssuerSubject = issuerSubject
	cert.Signature = issuerKey.Sign(cert.encodeTBS())
}

// VerifySignature checks cert's signature against the issuer public key.
func (c *Certificate) VerifySignature(issuerPub ed25519.PublicKey) bool {
	return ed25519.Verify(issuerPub, c.encodeTBS(), c.Signature)
}

// ValidAt reports whether day falls inside the certificate validity window.
func (c *Certificate) ValidAt(day int) bool {
	return day >= c.NotBefore && day <= c.NotAfter
}
