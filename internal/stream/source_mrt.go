package stream

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"os"
	"sort"
	"time"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/mrt"
)

// MRTReplaySource replays a file of concatenated TABLE_DUMP_V2 RIB
// snapshots as a route-event stream: the first snapshot becomes a baseline
// announce batch, and each subsequent snapshot is diffed against its
// predecessor into announce/withdraw events (an origination present before
// and absent now withdraws, and vice versa). Snapshots are spaced on the
// virtual clock by their MRT timestamps; Speed compresses the wall-clock
// sleep between them.
type MRTReplaySource struct {
	// Path names the archive file; R overrides it (for tests).
	Path string
	R    io.Reader
	// Speed divides the inter-snapshot wall delay: 60 replays an hourly
	// capture in minutes, 0 (or anything <=0 … and missing timestamps)
	// replays flat out. Virtual time is unaffected.
	Speed float64
}

func (s *MRTReplaySource) Name() string { return "mrt-replay" }

// origination is one (origin AS, prefix) pair extracted from a RIB entry:
// the origin is the last hop of the AS_PATH (the feeder itself for
// locally-originated entries with an empty path).
type origination struct {
	ASN    inet.ASN
	Prefix netip.Prefix
}

func originations(d *mrt.Dump) map[origination]bool {
	set := make(map[origination]bool, len(d.Entries))
	for _, e := range d.Entries {
		o := origination{Prefix: e.Prefix}
		if len(e.Path) > 0 {
			o.ASN = e.Path[len(e.Path)-1]
		} else {
			o.ASN = d.Peers[e.PeerIndex].ASN
		}
		set[o] = true
	}
	return set
}

// diffOriginations renders cur-vs-prev as a deterministic event batch.
func diffOriginations(prev, cur map[origination]bool) []bgp.RouteEvent {
	var events []bgp.RouteEvent
	for o := range cur {
		if !prev[o] {
			events = append(events, bgp.RouteEvent{Kind: bgp.EvAnnounce, AS: o.ASN, Prefix: o.Prefix})
		}
	}
	for o := range prev {
		if !cur[o] {
			events = append(events, bgp.RouteEvent{Kind: bgp.EvWithdraw, AS: o.ASN, Prefix: o.Prefix})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.AS != b.AS {
			return a.AS < b.AS
		}
		return a.Prefix.String() < b.Prefix.String()
	})
	return events
}

func (s *MRTReplaySource) Run(ctx context.Context, in <-chan Msg, out chan<- Msg) error {
	r := s.R
	if r == nil {
		f, err := os.Open(s.Path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	dumps, err := mrt.ReadDumps(r)
	if err != nil {
		return fmt.Errorf("stream: mrt replay: %w", err)
	}

	base := dumps[0].Timestamp
	prev := make(map[origination]bool)
	var seq uint64
	for i, d := range dumps {
		if i > 0 && s.Speed > 0 && d.Timestamp > dumps[i-1].Timestamp {
			wall := time.Duration(float64(d.Timestamp-dumps[i-1].Timestamp) / s.Speed * float64(time.Second))
			t := time.NewTimer(wall)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		}
		cur := originations(d)
		events := diffOriginations(prev, cur)
		prev = cur
		if len(events) == 0 {
			continue
		}
		m := Msg{Seq: seq, Time: float64(d.Timestamp - base), Events: events}
		seq++
		if err := send(ctx, out, m); err != nil {
			return err
		}
	}
	return nil
}
