package stream

import (
	"context"
	"time"

	"github.com/netsec-lab/rovista/internal/bgp"
)

// FilterStage drops events failing Keep (bgpipe's "grep"). A message whose
// events are all dropped and which carries no VRP snapshot is elided
// entirely.
type FilterStage struct {
	Keep func(bgp.RouteEvent) bool
}

func (f *FilterStage) Name() string { return "filter" }

func (f *FilterStage) Run(ctx context.Context, in <-chan Msg, out chan<- Msg) error {
	for {
		select {
		case m, ok := <-in:
			if !ok {
				return nil
			}
			kept := make([]bgp.RouteEvent, 0, len(m.Events))
			for _, ev := range m.Events {
				if f.Keep(ev) {
					kept = append(kept, ev)
				}
			}
			m.Events = kept
			if len(kept) == 0 && m.VRPs == nil {
				continue
			}
			if err := send(ctx, out, m); err != nil {
				return err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// RateLimitStage bounds throughput to PerSecond events per wall-clock
// second with a bucket of Burst (bgpipe's "limit"). It blocks — it never
// drops — so the delay backpressures upstream through the bounded channels.
type RateLimitStage struct {
	PerSecond float64
	Burst     int
}

func (r *RateLimitStage) Name() string { return "ratelimit" }

func (r *RateLimitStage) Run(ctx context.Context, in <-chan Msg, out chan<- Msg) error {
	burst := float64(r.Burst)
	if burst < 1 {
		burst = 1
	}
	tokens := burst
	last := time.Now()
	for {
		select {
		case m, ok := <-in:
			if !ok {
				return nil
			}
			cost := float64(len(m.Events))
			if cost < 1 {
				cost = 1
			}
			if r.PerSecond > 0 {
				now := time.Now()
				tokens += now.Sub(last).Seconds() * r.PerSecond
				last = now
				if tokens > burst {
					tokens = burst
				}
				if tokens < cost {
					wait := time.Duration((cost - tokens) / r.PerSecond * float64(time.Second))
					t := time.NewTimer(wait)
					select {
					case <-t.C:
					case <-ctx.Done():
						t.Stop()
						return ctx.Err()
					}
					now = time.Now()
					tokens += now.Sub(last).Seconds() * r.PerSecond
					last = now
				}
				tokens -= cost
			}
			if err := send(ctx, out, m); err != nil {
				return err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// CoalesceStage batches events so the sink's Graph.ApplyEvents receives one
// dirty-scope batch per window instead of one event at a time. Batching is
// on the messages' *virtual* clock: every input with Time in
// [k·Window, (k+1)·Window) merges into output batch k, so a replay
// coalesces identically at any wall speed or worker count. VRP snapshot
// messages act as barriers: the pending batch flushes first and the
// snapshot passes through unmerged (its roa-change scope must apply against
// the VRP view it describes).
type CoalesceStage struct {
	// Window is the batch width in virtual seconds (default 1).
	Window float64
	// MaxEvents flushes a batch early when it accumulates this many events
	// (0 = unbounded).
	MaxEvents int
	// MaxDelay, when >0, also flushes the pending batch after this much
	// wall time, bounding staleness when the source pauses mid-window.
	// Wall-clock flushes are nondeterministic; leave 0 where determinism
	// matters (the metamorphic tests do).
	MaxDelay time.Duration
}

func (c *CoalesceStage) Name() string { return "coalesce" }

func (c *CoalesceStage) Run(ctx context.Context, in <-chan Msg, out chan<- Msg) error {
	co := &coalescer{window: c.Window, maxEvents: c.MaxEvents}
	var timer *time.Timer
	var timeout <-chan time.Time
	stopTimer := func() {
		if timer != nil {
			timer.Stop()
			timer = nil
			timeout = nil
		}
	}
	for {
		select {
		case m, ok := <-in:
			if !ok {
				stopTimer()
				if last, have := co.finish(); have {
					return send(ctx, out, last)
				}
				return nil
			}
			for _, flushed := range co.add(m) {
				if err := send(ctx, out, flushed); err != nil {
					return err
				}
			}
			if co.havePending {
				if c.MaxDelay > 0 && timer == nil {
					timer = time.NewTimer(c.MaxDelay)
					timeout = timer.C
				}
			} else {
				stopTimer()
			}
		case <-timeout:
			timer, timeout = nil, nil
			if last, have := co.finish(); have {
				if err := send(ctx, out, last); err != nil {
					return err
				}
			}
		case <-ctx.Done():
			stopTimer()
			return ctx.Err()
		}
	}
}

// coalescer is the pure batching state machine shared by the streaming
// stage and CoalescePlan, so the two cannot diverge.
type coalescer struct {
	window      float64
	maxEvents   int
	pending     Msg
	havePending bool
	curWin      int
}

func (c *coalescer) winOf(t float64) int {
	w := c.window
	if w <= 0 {
		w = 1
	}
	return int(t / w)
}

// add feeds one message in and returns the batches it completed (possibly
// none, possibly the pending batch plus a pass-through VRP snapshot).
func (c *coalescer) add(m Msg) []Msg {
	var out []Msg
	flushPending := func() {
		if c.havePending {
			out = append(out, c.pending)
			c.havePending = false
		}
	}
	if m.VRPs != nil {
		flushPending()
		out = append(out, m)
		return out
	}
	win := c.winOf(m.Time)
	if c.havePending && win != c.curWin {
		flushPending()
	}
	if !c.havePending {
		w := c.window
		if w <= 0 {
			w = 1
		}
		c.pending = Msg{Seq: m.Seq, Time: float64(win) * w}
		c.havePending = true
		c.curWin = win
	}
	c.pending.Events = append(c.pending.Events, m.Events...)
	if c.maxEvents > 0 && len(c.pending.Events) >= c.maxEvents {
		flushPending()
	}
	return out
}

// finish returns the still-pending batch, if any.
func (c *coalescer) finish() (Msg, bool) {
	if !c.havePending {
		return Msg{}, false
	}
	m := c.pending
	c.havePending = false
	return m, true
}

// CoalescePlan batches a fully known message sequence exactly as a
// CoalesceStage with the same Window (and no MaxDelay/MaxEvents) would.
// The determinism tests use it to compute the reference batch sequence
// that the live pipeline must reproduce bit-for-bit.
func CoalescePlan(msgs []Msg, window float64) []Msg {
	co := &coalescer{window: window}
	var out []Msg
	for _, m := range msgs {
		out = append(out, co.add(m)...)
	}
	if last, have := co.finish(); have {
		out = append(out, last)
	}
	return out
}
