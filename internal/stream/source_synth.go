package stream

import (
	"context"
	"fmt"
	"time"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/seedmix"
)

// SynthSource is the deterministic live-churn generator: a seeded stream
// of announce/withdraw flaps over a fixed origination candidate set. Event
// i toggles candidate mix(seed, i) mod len(Origins) — an active origination
// withdraws, an inactive one re-announces — so the event sequence, and
// therefore every score timeline downstream, is a pure function of (Seed,
// Origins, Rate). Wall pacing (Interval) only stretches delivery time; the
// virtual clock the coalescer batches on is i/Rate regardless.
type SynthSource struct {
	Seed    int64
	Origins []Origin
	// Rate positions events on the virtual clock at Rate events per virtual
	// second (default 100).
	Rate float64
	// Count bounds the stream (0 = unbounded; the pipeline then runs until
	// cancelled).
	Count int
	// Interval is the wall-clock pacing between events (0 = flat out).
	Interval time.Duration
}

func (s *SynthSource) Name() string { return "synth" }

func (s *SynthSource) rate() float64 {
	if s.Rate <= 0 {
		return 100
	}
	return s.Rate
}

// event computes event i, mutating the active-state vector (all origins
// start active: they exist in the topology).
func (s *SynthSource) event(i int, withdrawn []bool) bgp.RouteEvent {
	j := int(uint64(seedmix.Mix(s.Seed, int64(i))) % uint64(len(s.Origins)))
	o := s.Origins[j]
	kind := bgp.EvWithdraw
	if withdrawn[j] {
		kind = bgp.EvAnnounce
	}
	withdrawn[j] = !withdrawn[j]
	return bgp.RouteEvent{Kind: kind, AS: o.ASN, Prefix: o.Prefix}
}

// Plan returns the first n messages of the stream — the same sequence Run
// emits — for tests and for the direct-apply reference path.
func (s *SynthSource) Plan(n int) []Msg {
	withdrawn := make([]bool, len(s.Origins))
	out := make([]Msg, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Msg{
			Seq:    uint64(i),
			Time:   float64(i) / s.rate(),
			Events: []bgp.RouteEvent{s.event(i, withdrawn)},
		})
	}
	return out
}

func (s *SynthSource) Run(ctx context.Context, in <-chan Msg, out chan<- Msg) error {
	if len(s.Origins) == 0 {
		return fmt.Errorf("stream: synth source has no origins")
	}
	withdrawn := make([]bool, len(s.Origins))
	for i := 0; s.Count == 0 || i < s.Count; i++ {
		if s.Interval > 0 && i > 0 {
			t := time.NewTimer(s.Interval)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		}
		m := Msg{
			Seq:    uint64(i),
			Time:   float64(i) / s.rate(),
			Events: []bgp.RouteEvent{s.event(i, withdrawn)},
		}
		if err := send(ctx, out, m); err != nil {
			return err
		}
	}
	return nil
}
