package stream

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/netsec-lab/rovista/internal/bgp"
)

// funcStage adapts a closure into a Stage for pipeline-mechanics tests.
type funcStage struct {
	name string
	run  func(ctx context.Context, in <-chan Msg, out chan<- Msg) error
}

func (f *funcStage) Name() string { return f.name }
func (f *funcStage) Run(ctx context.Context, in <-chan Msg, out chan<- Msg) error {
	return f.run(ctx, in, out)
}

// emitN is a source producing n single-event messages as fast as it can.
func emitN(n int) *funcStage {
	return &funcStage{name: "emit", run: func(ctx context.Context, in <-chan Msg, out chan<- Msg) error {
		for i := 0; i < n; i++ {
			m := Msg{Seq: uint64(i), Time: float64(i), Events: []bgp.RouteEvent{{Kind: bgp.EvAnnounce}}}
			if err := send(ctx, out, m); err != nil {
				return err
			}
		}
		return nil
	}}
}

// waitGoroutines polls until the goroutine count drops back to the base
// (modulo runtime noise), failing the test if it never does — the
// goroutine-leak check for cancellation paths.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > base %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBackpressureNoDrop: with a tiny channel buffer and a sink an order of
// magnitude slower than the source, every event must still arrive, in
// order — backpressure blocks the source instead of dropping.
func TestBackpressureNoDrop(t *testing.T) {
	const n = 200
	var got atomic.Uint64
	var lastSeq int64 = -1
	sink := &funcStage{name: "slow-sink", run: func(ctx context.Context, in <-chan Msg, out chan<- Msg) error {
		for m := range in {
			if int64(m.Seq) != lastSeq+1 {
				t.Errorf("out of order: seq %d after %d", m.Seq, lastSeq)
			}
			lastSeq = int64(m.Seq)
			got.Add(uint64(len(m.Events)))
			time.Sleep(100 * time.Microsecond)
		}
		return nil
	}}
	p := NewPipeline(2, emitN(n), sink)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got.Load() != n {
		t.Fatalf("sink saw %d events, want %d", got.Load(), n)
	}
	m := p.Metrics()
	if m[0].MsgsOut.Load() != n || m[0].EventsOut.Load() != n {
		t.Fatalf("source metrics = %d msgs / %d events, want %d", m[0].MsgsOut.Load(), m[0].EventsOut.Load(), n)
	}
}

// TestCancelDrainsWithoutDeadlock: cancelling the context while the source
// is blocked on a full channel (the sink consumes nothing) must unwind the
// whole pipeline promptly and leak no goroutines.
func TestCancelDrainsWithoutDeadlock(t *testing.T) {
	base := runtime.NumGoroutine()
	started := make(chan struct{})
	sink := &funcStage{name: "stuck-sink", run: func(ctx context.Context, in <-chan Msg, out chan<- Msg) error {
		close(started)
		<-ctx.Done() // never reads: upstream fills up and blocks
		return ctx.Err()
	}}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	p := NewPipeline(2, emitN(1_000_000), &FilterStage{Keep: func(bgp.RouteEvent) bool { return true }}, sink)
	go func() { done <- p.Run(ctx) }()

	<-started
	time.Sleep(20 * time.Millisecond) // let the edges fill and the source park
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cancelled run returned %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pipeline deadlocked after cancel")
	}
	waitGoroutines(t, base)
}

// TestStageErrorAbortsPipeline: a failing stage must cancel the others and
// surface its error from Run.
func TestStageErrorAbortsPipeline(t *testing.T) {
	base := runtime.NumGoroutine()
	boom := errors.New("boom")
	bad := &funcStage{name: "bad", run: func(ctx context.Context, in <-chan Msg, out chan<- Msg) error {
		for {
			select {
			case _, ok := <-in:
				if !ok {
					return nil
				}
				return boom
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}}
	sink := &funcStage{name: "sink", run: func(ctx context.Context, in <-chan Msg, out chan<- Msg) error {
		for {
			select {
			case _, ok := <-in:
				if !ok {
					return nil
				}
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}}
	p := NewPipeline(4, emitN(1_000_000), bad, sink)
	err := p.Run(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want boom", err)
	}
	waitGoroutines(t, base)
}

// TestFilterStage: dropped events disappear, empty messages are elided,
// VRP messages always pass.
func TestFilterStage(t *testing.T) {
	f := &FilterStage{Keep: func(ev bgp.RouteEvent) bool { return ev.AS != 2 }}
	in := make(chan Msg, 4)
	out := make(chan Msg, 4)
	in <- Msg{Events: []bgp.RouteEvent{{Kind: bgp.EvAnnounce, AS: 1}, {Kind: bgp.EvAnnounce, AS: 2}}}
	in <- Msg{Events: []bgp.RouteEvent{{Kind: bgp.EvAnnounce, AS: 2}}}
	close(in)
	if err := f.Run(context.Background(), in, out); err != nil {
		t.Fatal(err)
	}
	close(out)
	var msgs []Msg
	for m := range out {
		msgs = append(msgs, m)
	}
	if len(msgs) != 1 || len(msgs[0].Events) != 1 || msgs[0].Events[0].AS != 1 {
		t.Fatalf("filtered output = %+v", msgs)
	}
}

// TestCoalescePlanWindows: virtual-time batching groups by window and
// flushes the tail; streaming and plan paths agree.
func TestCoalescePlanWindows(t *testing.T) {
	src := emitN(10) // Time = 0..9
	var msgs []Msg
	for i := 0; i < 10; i++ {
		msgs = append(msgs, Msg{Seq: uint64(i), Time: float64(i), Events: []bgp.RouteEvent{{Kind: bgp.EvAnnounce, AS: 1}}})
	}
	batches := CoalescePlan(msgs, 4)
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3", len(batches))
	}
	if len(batches[0].Events) != 4 || len(batches[1].Events) != 4 || len(batches[2].Events) != 2 {
		t.Fatalf("batch sizes = %d/%d/%d", len(batches[0].Events), len(batches[1].Events), len(batches[2].Events))
	}

	// The streaming stage must produce the identical batch sequence.
	p := NewPipeline(4, src, &CoalesceStage{Window: 4}, &collectSink{})
	sink := p.stages[2].(*collectSink)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(sink.msgs) != len(batches) {
		t.Fatalf("streamed %d batches, want %d", len(sink.msgs), len(batches))
	}
	for i := range batches {
		if len(sink.msgs[i].Events) != len(batches[i].Events) || sink.msgs[i].Time != batches[i].Time {
			t.Fatalf("batch %d: streamed %+v vs plan %+v", i, sink.msgs[i], batches[i])
		}
	}
}

// collectSink accumulates everything it receives (single-goroutine use).
type collectSink struct {
	msgs []Msg
}

func (c *collectSink) Name() string { return "collect" }
func (c *collectSink) Run(ctx context.Context, in <-chan Msg, out chan<- Msg) error {
	for {
		select {
		case m, ok := <-in:
			if !ok {
				return nil
			}
			c.msgs = append(c.msgs, m)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// TestCoalesceMaxDelayFlushes: with MaxDelay set, a pending batch flushes
// on wall time even though its virtual window never closes.
func TestCoalesceMaxDelayFlushes(t *testing.T) {
	in := make(chan Msg)
	out := make(chan Msg, 1)
	c := &CoalesceStage{Window: 1e9, MaxDelay: 20 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- c.Run(ctx, in, out) }()

	in <- Msg{Time: 0, Events: []bgp.RouteEvent{{Kind: bgp.EvAnnounce, AS: 1}}}
	select {
	case m := <-out:
		if len(m.Events) != 1 {
			t.Fatalf("flushed %d events", len(m.Events))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("MaxDelay never flushed")
	}
	close(in)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
