package stream

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/inet"
)

// LiveSink terminates the pipeline at the live world: each incoming
// (coalesced) batch is applied through the incremental convergence path,
// an incremental measurement round re-scores the affected pairs, the
// snapshot is persisted, and the score movement fans out to push
// subscribers. All of it happens under Mu — the same mutex rovistad's
// query and round paths serialize on — so a streamed batch respects the
// existing round-boundary discipline.
type LiveSink struct {
	W      *core.World
	Runner *core.Runner
	// Mu, when set, serializes batch application against the daemon's
	// other world mutators (rovistad passes its worldMu).
	Mu *sync.Mutex
	// Append, when set, persists each round's snapshot (rovistad appends
	// to the store, which publishes a new read view).
	Append func(*core.Snapshot) error
	// Hub, when set, receives the score deltas of each round.
	Hub *Hub
	// OnRound, when set, observes each round's snapshot (after Append).
	OnRound func(*core.Snapshot)

	// Batches/EventsApplied/Rounds/DeltasPublished are the sink's live
	// counters, readable while the pipeline runs.
	Batches         atomic.Uint64
	EventsApplied   atomic.Uint64
	Rounds          atomic.Uint64
	DeltasPublished atomic.Uint64

	prev  map[inet.ASN]float64
	round uint32
}

// SeedScores primes the delta baseline (typically with the daemon's
// pre-stream baseline round) so the first streamed round publishes
// movement rather than an "every AS appeared" flood, and continues the
// round numbering so SSE ids stay monotonic across the handoff. Call
// before the pipeline starts; not safe concurrently with Run.
func (s *LiveSink) SeedScores(round uint32, scores map[inet.ASN]float64) {
	s.round = round
	s.prev = scores
}

func (s *LiveSink) Name() string { return "live-sink" }

func (s *LiveSink) Run(ctx context.Context, in <-chan Msg, out chan<- Msg) error {
	for {
		select {
		case m, ok := <-in:
			if !ok {
				return nil
			}
			if err := s.apply(m); err != nil {
				return err
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// apply installs one batch and runs one incremental round.
func (s *LiveSink) apply(m Msg) error {
	if s.Mu != nil {
		s.Mu.Lock()
		defer s.Mu.Unlock()
	}
	if m.VRPs != nil {
		s.W.RefreshVRPViews(m.VRPs)
	}
	if len(m.Events) > 0 {
		if _, err := s.W.Graph.ApplyEvents(m.Events); err != nil {
			return err
		}
	} else if m.VRPs == nil {
		return nil // nothing to do
	}
	s.Batches.Add(1)
	s.EventsApplied.Add(uint64(len(m.Events)))

	snap := s.Runner.Measure()
	s.Rounds.Add(1)
	s.round++
	if s.Append != nil {
		if err := s.Append(snap); err != nil {
			return err
		}
	}
	cur := snap.Scores()
	deltas := DiffScores(s.prev, cur)
	s.prev = cur
	if s.Hub != nil && len(deltas) > 0 {
		s.Hub.Publish(Update{Round: s.round, Day: snap.Day, Deltas: deltas})
		s.DeltasPublished.Add(uint64(len(deltas)))
	}
	if s.OnRound != nil {
		s.OnRound(snap)
	}
	return nil
}

// Snapshot renders the sink counters as an expvar-friendly map.
func (s *LiveSink) Snapshot() map[string]any {
	return map[string]any{
		"batches":          s.Batches.Load(),
		"events_applied":   s.EventsApplied.Load(),
		"rounds":           s.Rounds.Load(),
		"deltas_published": s.DeltasPublished.Load(),
	}
}
