package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// defaultBuf is the per-edge channel capacity when Pipeline.Buf is zero.
const defaultBuf = 64

// StageMetrics counts the traffic a stage emitted downstream. The counters
// live on the edge leaving the stage (the sink, having no out edge, reports
// through its own counters instead), are updated lock-free, and are safe to
// read while the pipeline runs — rovistad's /metrics scrapes them live.
type StageMetrics struct {
	Name      string
	MsgsOut   atomic.Uint64
	EventsOut atomic.Uint64
}

// Pipeline wires stages with bounded channels. Backpressure is structural:
// sends block when the downstream buffer is full, so a slow sink slows the
// source instead of dropping messages. Construct with NewPipeline, then Run.
type Pipeline struct {
	stages  []Stage
	buf     int
	metrics []*StageMetrics
}

// NewPipeline composes stages (source first, sink last) with per-edge
// buffers of capacity buf (<=0 selects the default of 64).
func NewPipeline(buf int, stages ...Stage) *Pipeline {
	if buf <= 0 {
		buf = defaultBuf
	}
	p := &Pipeline{stages: stages, buf: buf}
	for _, st := range stages {
		p.metrics = append(p.metrics, &StageMetrics{Name: st.Name()})
	}
	return p
}

// Metrics returns the per-stage counters, in stage order.
func (p *Pipeline) Metrics() []*StageMetrics { return p.metrics }

// Snapshot renders the per-stage counters as an expvar-friendly map, keyed
// "<index>:<stage name>" so duplicate stage names stay distinct.
func (p *Pipeline) Snapshot() map[string]any {
	out := make(map[string]any, len(p.metrics))
	for i, m := range p.metrics {
		out[fmt.Sprintf("%d:%s", i, m.Name)] = map[string]any{
			"msgs_out":   m.MsgsOut.Load(),
			"events_out": m.EventsOut.Load(),
		}
	}
	return out
}

// Run executes the pipeline until the source is exhausted (messages drain
// through to the sink, then every stage returns), a stage fails (the
// pipeline cancels and the first error is returned), or ctx is cancelled
// (every stage unblocks via its ctx select and Run returns nil — a
// cancelled pipeline exits cleanly without deadlocking, though messages
// still buffered on edges are discarded).
func (p *Pipeline) Run(ctx context.Context) error {
	if len(p.stages) == 0 {
		return nil
	}
	ictx, cancel := context.WithCancel(ctx)
	defer cancel()

	n := len(p.stages)
	errs := make([]error, n)
	var wg sync.WaitGroup

	var in <-chan Msg // nil for the source
	for i, st := range p.stages {
		var out chan Msg
		var next chan Msg
		if i < n-1 {
			// The stage writes its own buffered edge; a counting forwarder
			// moves messages to the next stage's unbuffered inlet. Metrics
			// cannot wrap a channel, so the forwarder is where the per-edge
			// counters live.
			out = make(chan Msg, p.buf)
			next = make(chan Msg)
			wg.Add(1)
			go p.forward(ictx, &wg, p.metrics[i], out, next)
		}
		wg.Add(1)
		go func(i int, st Stage, in <-chan Msg, out chan Msg) {
			defer wg.Done()
			err := st.Run(ictx, in, out)
			if out != nil {
				close(out)
			}
			if err != nil && !errors.Is(err, context.Canceled) {
				errs[i] = fmt.Errorf("stage %s: %w", st.Name(), err)
				cancel() // abort the rest of the pipeline
			}
		}(i, st, in, out)
		in = next
	}
	wg.Wait()
	return errors.Join(errs...)
}

// forward drains from into to, counting, until from closes or ctx cancels.
func (p *Pipeline) forward(ctx context.Context, wg *sync.WaitGroup, m *StageMetrics, from <-chan Msg, to chan<- Msg) {
	defer wg.Done()
	defer close(to)
	for msg := range from {
		m.MsgsOut.Add(1)
		m.EventsOut.Add(uint64(len(msg.Events)))
		select {
		case to <- msg:
		case <-ctx.Done():
			return
		}
	}
}
