package stream

import (
	"context"
	"reflect"
	"testing"

	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/inet"
)

// buildStreamWorld makes a small converged world plus its runner.
func buildStreamWorld(t *testing.T, seed int64, workers int) (*core.World, *core.Runner) {
	t.Helper()
	w, err := core.BuildWorld(core.SmallWorldConfig(seed))
	if err != nil {
		t.Fatalf("BuildWorld: %v", err)
	}
	if err := w.AdvanceTo(0); err != nil {
		t.Fatalf("AdvanceTo: %v", err)
	}
	cfg := core.DefaultRunnerConfig(seed)
	cfg.Workers = workers
	return w, core.NewRunner(w, cfg)
}

// timelineViaPipeline streams a fixed-seed synthetic churn sequence through
// the full pipeline (source → coalesce → live sink) and records the score
// timeline.
func timelineViaPipeline(t *testing.T, seed int64, workers, events int, window float64) []map[inet.ASN]float64 {
	t.Helper()
	w, runner := buildStreamWorld(t, seed, workers)
	var timeline []map[inet.ASN]float64
	sink := &LiveSink{W: w, Runner: runner, OnRound: func(s *core.Snapshot) {
		timeline = append(timeline, s.Scores())
	}}
	src := &SynthSource{Seed: seed, Origins: WorldOrigins(w), Rate: 10, Count: events}
	p := NewPipeline(8, src, &CoalesceStage{Window: window}, sink)
	if err := p.Run(context.Background()); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	return timeline
}

// timelineDirect applies the same coalesced batches without any pipeline
// machinery: Plan → CoalescePlan → ApplyEvents → Measure. This is the
// reference the streamed path must reproduce bit-for-bit.
func timelineDirect(t *testing.T, seed int64, workers, events int, window float64) []map[inet.ASN]float64 {
	t.Helper()
	w, runner := buildStreamWorld(t, seed, workers)
	src := &SynthSource{Seed: seed, Origins: WorldOrigins(w), Rate: 10, Count: events}
	batches := CoalescePlan(src.Plan(events), window)
	var timeline []map[inet.ASN]float64
	for _, b := range batches {
		if _, err := w.Graph.ApplyEvents(b.Events); err != nil {
			t.Fatalf("ApplyEvents: %v", err)
		}
		timeline = append(timeline, runner.Measure().Scores())
	}
	return timeline
}

// TestStreamDeterminismAcrossWorkers is the metamorphic determinism pin:
// a fixed-seed synthetic-churn stream replayed through the pipeline must
// produce a score timeline bit-identical to applying the same coalesced
// batches directly — at every combination of worker counts, in either
// direction. Channel scheduling, coalescer timing, and the parallel pair
// executor may change *when* work happens, never *what* it produces.
func TestStreamDeterminismAcrossWorkers(t *testing.T) {
	const seed, events = 42, 40
	const window = 2.0 // virtual seconds → batches of ~20 events at Rate 10

	ref := timelineDirect(t, seed, 1, events, window)
	if len(ref) == 0 {
		t.Fatal("reference timeline is empty; property is vacuous")
	}
	for _, workers := range []int{1, 4} {
		got := timelineViaPipeline(t, seed, workers, events, window)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("pipeline timeline (workers=%d) diverged from direct workers=1 reference", workers)
		}
	}
	// And the reverse pairing: direct at 4 workers vs the single reference.
	if got := timelineDirect(t, seed, 4, events, window); !reflect.DeepEqual(got, ref) {
		t.Fatal("direct timeline at workers=4 diverged from workers=1")
	}
}

// TestSynthPlanMatchesRun: the generator's Plan and its streaming Run emit
// the same sequence (Plan is the reference the determinism pin relies on).
func TestSynthPlanMatchesRun(t *testing.T) {
	w, _ := buildStreamWorld(t, 7, 1)
	src := &SynthSource{Seed: 7, Origins: WorldOrigins(w), Rate: 10, Count: 25}
	want := src.Plan(25)

	sink := &collectSink{}
	p := NewPipeline(4, src, sink)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sink.msgs, want) {
		t.Fatalf("Run emitted %d msgs, Plan %d; sequences differ", len(sink.msgs), len(want))
	}
}

// TestLiveSinkPublishesDeltas: each applied batch triggers a measure and a
// hub publication whose deltas describe the score movement.
func TestLiveSinkPublishesDeltas(t *testing.T) {
	w, runner := buildStreamWorld(t, 11, 1)
	hub := NewHub()
	sub := hub.Subscribe(SubFilter{}, 64)
	sink := &LiveSink{W: w, Runner: runner, Hub: hub}

	src := &SynthSource{Seed: 11, Origins: WorldOrigins(w), Rate: 10, Count: 20}
	p := NewPipeline(8, src, &CoalesceStage{Window: 2}, sink)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if sink.Rounds.Load() == 0 {
		t.Fatal("sink measured no rounds")
	}
	// First round's deltas are all Appeared (prev was empty).
	select {
	case u := <-sub.C:
		if len(u.Deltas) == 0 {
			t.Fatal("first update carried no deltas")
		}
		for _, d := range u.Deltas {
			if !d.Appeared {
				t.Fatalf("first-round delta not Appeared: %+v", d)
			}
		}
	default:
		t.Fatal("no update published")
	}
	sub.Close()
}
