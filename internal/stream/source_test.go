package stream

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/collectors"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/mrt"
	"github.com/netsec-lab/rovista/internal/rpki"
	"github.com/netsec-lab/rovista/internal/rtr"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// writeSnapshot converges a 4-AS graph where AS 3 originates the given
// prefixes and appends its collector view to buf as one MRT archive.
func writeSnapshot(t *testing.T, buf *bytes.Buffer, timestamp uint32, originated ...netip.Prefix) {
	t.Helper()
	g := bgp.NewGraph()
	g.Link(1, 2, bgp.Peer)
	g.Link(1, 3, bgp.Customer)
	g.Link(2, 3, bgp.Customer)
	g.AS(3).Originated = originated
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	feeders := []inet.ASN{1, 2}
	coll := &collectors.Collector{Name: "rv-test", Feeders: feeders}
	if err := mrt.WriteView(buf, "rv-test", coll.Snapshot(g), feeders, timestamp); err != nil {
		t.Fatal(err)
	}
}

// TestMRTReplayDiffsSnapshots: the first snapshot becomes a baseline
// announce batch; the second, which drops one prefix and adds another,
// becomes exactly one withdraw plus one announce.
func TestMRTReplayDiffsSnapshots(t *testing.T) {
	var buf bytes.Buffer
	writeSnapshot(t, &buf, 1000, pfx("10.3.0.0/16"), pfx("10.30.0.0/20"))
	writeSnapshot(t, &buf, 2000, pfx("10.3.0.0/16"), pfx("10.99.0.0/16"))

	sink := &collectSink{}
	p := NewPipeline(4, &MRTReplaySource{R: &buf}, sink)
	if err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(sink.msgs) != 2 {
		t.Fatalf("messages = %d, want 2", len(sink.msgs))
	}

	base := sink.msgs[0]
	if base.Time != 0 || len(base.Events) != 2 {
		t.Fatalf("baseline = %+v", base)
	}
	for _, ev := range base.Events {
		if ev.Kind != bgp.EvAnnounce || ev.AS != 3 {
			t.Fatalf("baseline event = %+v", ev)
		}
	}

	delta := sink.msgs[1]
	if delta.Time != 1000 {
		t.Fatalf("delta virtual time = %v, want 1000", delta.Time)
	}
	var ann, wd int
	for _, ev := range delta.Events {
		switch {
		case ev.Kind == bgp.EvAnnounce && ev.Prefix == pfx("10.99.0.0/16"):
			ann++
		case ev.Kind == bgp.EvWithdraw && ev.Prefix == pfx("10.30.0.0/20"):
			wd++
		default:
			t.Fatalf("unexpected delta event %+v", ev)
		}
	}
	if ann != 1 || wd != 1 {
		t.Fatalf("delta = %d announces, %d withdraws", ann, wd)
	}
}

func sampleVRPs(asn inet.ASN) *rpki.VRPSet {
	return rpki.NewVRPSet([]rpki.VRP{
		{ASN: asn, Prefix: pfx("10.0.0.0/8"), MaxLength: 16},
		{ASN: 64501, Prefix: pfx("192.0.2.0/24"), MaxLength: 24},
	})
}

// TestRTRSourceEmitsDeltas: an RTR cache update must surface as one Msg
// carrying the replacement VRP set and a roa-change event scoped to the
// changed prefixes — and cancelling the pipeline mid-poll must not leak
// the client's read goroutine (the Abort path).
func TestRTRSourceEmitsDeltas(t *testing.T) {
	base := runtime.NumGoroutine()

	cache := rtr.NewCache(9)
	cache.Update(sampleVRPs(64500))
	serverConn, clientConn := net.Pipe()
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); cache.Serve(serverConn) }()

	src := &RTRSource{
		Dial: func() (io.ReadWriter, error) { return clientConn, nil },
		Poll: 5 * time.Millisecond,
	}
	out := make(chan Msg, 4)
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- src.Run(ctx, nil, out) }()

	// Give the source time to take its baseline, then move the serial.
	time.Sleep(20 * time.Millisecond)
	cache.Update(rpki.NewVRPSet([]rpki.VRP{
		{ASN: 64500, Prefix: pfx("10.0.0.0/8"), MaxLength: 16},
		{ASN: 64999, Prefix: pfx("203.0.113.0/24"), MaxLength: 24},
	}))

	select {
	case m := <-out:
		if m.VRPs == nil || m.Serial != 2 {
			t.Fatalf("msg = %+v", m)
		}
		if len(m.Events) != 1 || m.Events[0].Kind != bgp.EvROAChange {
			t.Fatalf("events = %+v", m.Events)
		}
		// Changed prefixes: 192.0.2.0/24 withdrawn, 203.0.113.0/24 announced.
		got := map[netip.Prefix]bool{}
		for _, p := range m.Events[0].Prefixes {
			got[p] = true
		}
		if !got[pfx("192.0.2.0/24")] || !got[pfx("203.0.113.0/24")] || len(got) != 2 {
			t.Fatalf("changed prefixes = %v", m.Events[0].Prefixes)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delta emitted after cache update")
	}

	// Cancellation mid-poll: Run must return promptly (the watchdog aborts
	// any in-flight read) and leak nothing.
	cancel()
	select {
	case <-runDone:
	case <-time.After(2 * time.Second):
		t.Fatal("RTR source still running after cancel")
	}
	serverConn.Close()
	<-serveDone
	waitGoroutines(t, base)
}
