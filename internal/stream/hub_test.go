package stream

import (
	"testing"

	"github.com/netsec-lab/rovista/internal/inet"
)

func mkUpdate(round uint32, deltas ...ScoreDelta) Update {
	return Update{Round: round, Deltas: deltas}
}

func TestHubPerASFilter(t *testing.T) {
	h := NewHub()
	all := h.Subscribe(SubFilter{}, 8)
	only7 := h.Subscribe(SubFilter{ASN: 7}, 8)

	h.Publish(mkUpdate(1,
		ScoreDelta{ASN: 7, Old: 10, New: 30},
		ScoreDelta{ASN: 9, Old: 50, New: 40},
	))
	h.Publish(mkUpdate(2, ScoreDelta{ASN: 9, Old: 40, New: 45}))

	if u := <-all.C; len(u.Deltas) != 2 {
		t.Fatalf("unfiltered sub got %d deltas, want 2", len(u.Deltas))
	}
	if u := <-all.C; len(u.Deltas) != 1 || u.Deltas[0].ASN != 9 {
		t.Fatalf("unfiltered round 2 = %+v", u.Deltas)
	}
	// The AS-7 subscriber sees only round 1, with only its delta.
	u := <-only7.C
	if u.Round != 1 || len(u.Deltas) != 1 || u.Deltas[0].ASN != 7 {
		t.Fatalf("filtered sub got %+v", u)
	}
	select {
	case u := <-only7.C:
		t.Fatalf("filtered sub got unexpected update %+v", u)
	default:
	}
	all.Close()
	only7.Close()
	if h.Subscribers.Load() != 0 {
		t.Fatalf("subscriber gauge = %d after close", h.Subscribers.Load())
	}
}

func TestHubMinDeltaFilter(t *testing.T) {
	h := NewHub()
	s := h.Subscribe(SubFilter{MinDelta: 10}, 8)
	h.Publish(mkUpdate(1,
		ScoreDelta{ASN: 1, Old: 50, New: 55},             // below threshold
		ScoreDelta{ASN: 2, Old: 50, New: 30},             // passes (|Δ|=20)
		ScoreDelta{ASN: 3, New: 2, Appeared: true},       // state change: always passes
		ScoreDelta{ASN: 4, Old: 99, New: 0, Vanished: true}, // state change
	))
	u := <-s.C
	if len(u.Deltas) != 3 {
		t.Fatalf("got %d deltas, want 3: %+v", len(u.Deltas), u.Deltas)
	}
	for _, d := range u.Deltas {
		if d.ASN == 1 {
			t.Fatal("sub-threshold delta leaked through")
		}
	}
	s.Close()
}

func TestHubSlowSubscriberEviction(t *testing.T) {
	h := NewHub()
	slow := h.Subscribe(SubFilter{}, 1)
	fast := h.Subscribe(SubFilter{}, 8)

	d := ScoreDelta{ASN: 1, Old: 0, New: 1}
	h.Publish(mkUpdate(1, d)) // fills slow's buffer
	h.Publish(mkUpdate(2, d)) // overflows: slow is evicted
	h.Publish(mkUpdate(3, d))

	if h.Evictions.Load() != 1 {
		t.Fatalf("evictions = %d, want 1", h.Evictions.Load())
	}
	// Slow sub: one buffered update, then a closed channel, flagged evicted.
	if u, ok := <-slow.C; !ok || u.Round != 1 {
		t.Fatalf("slow sub first read = %+v ok=%v", u, ok)
	}
	if _, ok := <-slow.C; ok {
		t.Fatal("evicted subscriber's channel still open")
	}
	if !slow.Evicted() {
		t.Fatal("Evicted() = false after eviction")
	}
	// Fast sub saw everything.
	for want := uint32(1); want <= 3; want++ {
		if u := <-fast.C; u.Round != want {
			t.Fatalf("fast sub round = %d, want %d", u.Round, want)
		}
	}
	// Closing an evicted sub is a no-op, not a double close.
	slow.Close()
	fast.Close()
	if h.Subscribers.Load() != 0 {
		t.Fatalf("subscriber gauge = %d", h.Subscribers.Load())
	}
}

func TestDiffScores(t *testing.T) {
	prev := map[inet.ASN]float64{1: 10, 2: 20, 3: 30}
	cur := map[inet.ASN]float64{1: 10, 2: 25, 4: 40}
	ds := DiffScores(prev, cur)
	if len(ds) != 3 {
		t.Fatalf("deltas = %+v", ds)
	}
	// Sorted by ASN: 2 (changed), 3 (vanished), 4 (appeared).
	if ds[0].ASN != 2 || ds[0].Old != 20 || ds[0].New != 25 {
		t.Fatalf("ds[0] = %+v", ds[0])
	}
	if ds[1].ASN != 3 || !ds[1].Vanished {
		t.Fatalf("ds[1] = %+v", ds[1])
	}
	if ds[2].ASN != 4 || !ds[2].Appeared {
		t.Fatalf("ds[2] = %+v", ds[2])
	}
}
