package stream

import (
	"context"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/rpki"
	"github.com/netsec-lab/rovista/internal/rtr"
)

// RTRSource polls an RPKI-to-Router cache and emits a Msg whenever the
// cache's serial moves: the message carries the full replacement VRP
// snapshot plus one EvROAChange event scoped to the prefixes whose VRPs
// changed, so the sink re-validates exactly the affected routing state.
// The initial Reset establishes a baseline silently (the world already
// holds a VRP view at startup).
//
// Cancellation mid-sync is handled by aborting the client: RTR reads have
// no deadline, so a watchdog closes the transport when ctx falls, which
// unblocks the read loop instead of leaking it.
type RTRSource struct {
	// Dial opens the transport to the cache. Called once.
	Dial func() (io.ReadWriter, error)
	// Poll is the refresh interval (default 1s).
	Poll time.Duration
}

func (s *RTRSource) Name() string { return "rtr-delta" }

func (s *RTRSource) Run(ctx context.Context, in <-chan Msg, out chan<- Msg) error {
	rw, err := s.Dial()
	if err != nil {
		return fmt.Errorf("stream: rtr dial: %w", err)
	}
	client := rtr.NewClient(rw)

	// Watchdog: a cancelled ctx aborts any in-flight sync so the blocking
	// ReadPDU returns instead of leaking the goroutine.
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		select {
		case <-ctx.Done():
			client.Abort()
		case <-watchdogDone:
		}
	}()

	if err := client.Reset(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("stream: rtr reset: %w", err)
	}
	prev := client.VRPSet().All()
	start := time.Now()

	poll := s.Poll
	if poll <= 0 {
		poll = time.Second
	}
	var seq uint64
	for {
		t := time.NewTimer(poll)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
		before := client.Serial()
		if err := client.Refresh(); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("stream: rtr refresh: %w", err)
		}
		if client.Serial() == before {
			continue
		}
		cur := client.VRPSet().All()
		changed := changedPrefixes(prev, cur)
		prev = cur
		if len(changed) == 0 {
			continue
		}
		m := Msg{
			Seq:    seq,
			Time:   time.Since(start).Seconds(),
			VRPs:   rpki.NewVRPSet(cur),
			Serial: client.Serial(),
			Events: []bgp.RouteEvent{{Kind: bgp.EvROAChange, Prefixes: changed}},
		}
		seq++
		if err := send(ctx, out, m); err != nil {
			return err
		}
	}
}

// changedPrefixes returns the deduplicated prefixes of VRPs present in
// exactly one of the two snapshots — the roa-change dirty scope.
func changedPrefixes(old, new []rpki.VRP) []netip.Prefix {
	key := func(v rpki.VRP) string {
		return fmt.Sprintf("%v|%d|%d", v.Prefix, v.MaxLength, v.ASN)
	}
	oldSet := make(map[string]rpki.VRP, len(old))
	for _, v := range old {
		oldSet[key(v)] = v
	}
	newSet := make(map[string]rpki.VRP, len(new))
	seen := make(map[netip.Prefix]bool)
	var out []netip.Prefix
	add := func(p netip.Prefix) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, v := range new {
		newSet[key(v)] = v
		if _, ok := oldSet[key(v)]; !ok {
			add(v.Prefix)
		}
	}
	for _, v := range old {
		if _, ok := newSet[key(v)]; !ok {
			add(v.Prefix)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
