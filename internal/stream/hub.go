package stream

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/netsec-lab/rovista/internal/inet"
)

// ScoreDelta is one AS's score movement between two measurement rounds.
type ScoreDelta struct {
	ASN inet.ASN `json:"asn"`
	Old float64  `json:"old"`
	New float64  `json:"new"`
	// Appeared: the AS was not scorable in the previous round (Old is 0 by
	// convention). Vanished: it dropped out of this round (New is 0).
	Appeared bool `json:"appeared,omitempty"`
	Vanished bool `json:"vanished,omitempty"`
}

// Update is one round's worth of score changes, fanned out to subscribers.
type Update struct {
	Round  uint32       `json:"round"`
	Day    int          `json:"day"`
	Deltas []ScoreDelta `json:"deltas"`
	// At stamps publication, for delivery-latency measurement. Not
	// serialized.
	At time.Time `json:"-"`
}

// DiffScores renders the movement between two score maps as deltas sorted
// by ASN. Unchanged scores produce nothing.
func DiffScores(prev, cur map[inet.ASN]float64) []ScoreDelta {
	var out []ScoreDelta
	for asn, s := range cur {
		old, had := prev[asn]
		switch {
		case !had:
			out = append(out, ScoreDelta{ASN: asn, New: s, Appeared: true})
		case old != s:
			out = append(out, ScoreDelta{ASN: asn, Old: old, New: s})
		}
	}
	for asn, s := range prev {
		if _, have := cur[asn]; !have {
			out = append(out, ScoreDelta{ASN: asn, Old: s, Vanished: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// SubFilter narrows what a subscriber receives.
type SubFilter struct {
	// ASN, when nonzero, selects a single AS.
	ASN inet.ASN
	// MinDelta suppresses deltas whose |New-Old| is below the threshold
	// (appear/vanish transitions always pass: they are state changes, not
	// noise).
	MinDelta float64
}

func (f SubFilter) match(d ScoreDelta) bool {
	if f.ASN != 0 && d.ASN != f.ASN {
		return false
	}
	if f.MinDelta > 0 && !d.Appeared && !d.Vanished {
		diff := d.New - d.Old
		if diff < 0 {
			diff = -diff
		}
		if diff < f.MinDelta {
			return false
		}
	}
	return true
}

// Subscriber is one push-subscription: read updates from C until it closes
// (Close called, or the hub evicted the subscriber for falling behind).
type Subscriber struct {
	C <-chan Update

	c       chan Update
	f       SubFilter
	hub     *Hub
	closed  bool
	evicted bool
}

// Evicted reports whether the hub closed this subscription for falling
// behind (valid after C closes).
func (s *Subscriber) Evicted() bool {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	return s.evicted
}

// Close detaches the subscriber; C closes. Idempotent.
func (s *Subscriber) Close() {
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if !s.closed {
		s.closed = true
		delete(h.subs, s)
		close(s.c)
		h.Subscribers.Add(-1)
	}
}

// Hub fans score updates out to push subscribers. Publish never blocks on
// a subscriber: each subscription has a bounded buffer, and a subscriber
// whose buffer is full when an update arrives is evicted (its channel
// closes) rather than allowed to stall the round loop — the same
// slow-consumer policy every production fan-out uses.
type Hub struct {
	mu   sync.Mutex
	subs map[*Subscriber]struct{}

	// Published counts Publish calls; Delivered counts per-subscriber
	// enqueues; Evictions counts slow-subscriber evictions; Subscribers is
	// the live-subscription gauge.
	Published   atomic.Uint64
	Delivered   atomic.Uint64
	Evictions   atomic.Uint64
	Subscribers atomic.Int64
}

// NewHub creates an empty hub.
func NewHub() *Hub {
	return &Hub{subs: make(map[*Subscriber]struct{})}
}

// Subscribe attaches a subscription with the given filter and buffer
// capacity (<=0 selects 16).
func (h *Hub) Subscribe(f SubFilter, buf int) *Subscriber {
	if buf <= 0 {
		buf = 16
	}
	s := &Subscriber{f: f, hub: h, c: make(chan Update, buf)}
	s.C = s.c
	h.mu.Lock()
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	h.Subscribers.Add(1)
	return s
}

// Publish delivers u to every subscriber whose filter matches at least one
// delta, evicting subscribers whose buffers are full.
func (h *Hub) Publish(u Update) {
	h.Published.Add(1)
	if u.At.IsZero() {
		u.At = time.Now()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for s := range h.subs {
		filtered := u
		if s.f.ASN != 0 || s.f.MinDelta > 0 {
			var kept []ScoreDelta
			for _, d := range u.Deltas {
				if s.f.match(d) {
					kept = append(kept, d)
				}
			}
			if len(kept) == 0 {
				continue
			}
			filtered.Deltas = kept
		}
		select {
		case s.c <- filtered:
			h.Delivered.Add(1)
		default:
			// Slow subscriber: evict under the lock (no send can race the
			// close — all sends happen here).
			s.closed = true
			s.evicted = true
			delete(h.subs, s)
			close(s.c)
			h.Evictions.Add(1)
			h.Subscribers.Add(-1)
		}
	}
}

// Close detaches every subscriber (their channels close). Idempotent; the
// hub can keep accepting Subscribe/Publish afterwards, so it doubles as a
// "disconnect everyone" control.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for s := range h.subs {
		s.closed = true
		delete(h.subs, s)
		close(s.c)
		h.Subscribers.Add(-1)
	}
}

// Snapshot renders the hub counters as an expvar-friendly map.
func (h *Hub) Snapshot() map[string]any {
	return map[string]any{
		"published":   h.Published.Load(),
		"delivered":   h.Delivered.Load(),
		"evictions":   h.Evictions.Load(),
		"subscribers": h.Subscribers.Load(),
	}
}
