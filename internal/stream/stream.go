// Package stream is the streaming-ingest subsystem: a bgpipe-style stage
// pipeline that feeds the incremental convergence and scoring engines a
// continuous stream of routing and RPKI changes instead of batch snapshots.
//
// The unit of flow is a Msg carrying either a batch of bgp.RouteEvents or a
// replacement VRP snapshot (an RTR delta sync). Stages — sources that
// produce Msgs (MRT replay, RTR polling, a deterministic synthetic churn
// generator), transforms that filter/ratelimit/coalesce them, and sinks
// that apply them to a live world — implement one interface and are
// composed by a Pipeline that wires them with bounded channels, per-edge
// counters, and clean cancellation semantics.
//
// The design mirrors bgpipe's taxonomy (read-mrt/ris-live sources,
// grep/limit transforms, websocket sinks) scaled down to this repository's
// vocabulary: the sink's output is not a byte stream but an incremental
// measurement round plus a fan-out of score deltas to push subscribers.
package stream

import (
	"context"
	"sort"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/rpki"
	"net/netip"
)

// Msg is the unit flowing between stages: a batch of route events pinned to
// a position on the stream's virtual clock, or (for RPKI delta sources) a
// replacement VRP snapshot plus the roa-change events that re-validate the
// affected prefixes.
type Msg struct {
	// Seq is the message's sequence number within its producing stage.
	Seq uint64
	// Time is the message's position on the stream's virtual clock, in
	// seconds since stream start. The coalescer batches on this clock, not
	// the wall clock, so a replay is deterministic at any speed.
	Time float64
	// Events is the route-event batch (may be empty on pure VRP messages).
	Events []bgp.RouteEvent
	// VRPs, when non-nil, is a full replacement VRP snapshot from an RPKI
	// delta source. The sink installs it via World.RefreshVRPViews before
	// applying Events (which then carry the EvROAChange dirty scope).
	VRPs *rpki.VRPSet
	// Serial is the RTR serial accompanying VRPs.
	Serial uint32
}

// Stage is one pipeline element. Sources receive a nil in channel; sinks a
// nil out channel. A stage must return when its input closes (after
// processing what it read) or when ctx is cancelled, and every send on out
// must select on ctx.Done() so a cancelled pipeline can never deadlock on a
// full channel. Returning ctx.Err() after cancellation is the clean exit;
// any other non-nil error aborts the whole pipeline.
type Stage interface {
	Name() string
	Run(ctx context.Context, in <-chan Msg, out chan<- Msg) error
}

// send delivers m on out unless ctx is cancelled first.
func send(ctx context.Context, out chan<- Msg, m Msg) error {
	select {
	case out <- m:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Origin is one (AS, prefix) origination candidate for synthetic churn.
type Origin struct {
	ASN    inet.ASN
	Prefix netip.Prefix
}

// WorldOrigins lists every (AS, prefix) origination in the world's
// topology in a deterministic order, for seeding a SynthSource.
func WorldOrigins(w *core.World) []Origin {
	var out []Origin
	for _, asn := range w.Topo.ASNs {
		for _, p := range w.Topo.Info[asn].Prefixes {
			out = append(out, Origin{ASN: asn, Prefix: p})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ASN != out[j].ASN {
			return out[i].ASN < out[j].ASN
		}
		return out[i].Prefix.String() < out[j].Prefix.String()
	})
	return out
}
