package netsim

import (
	"net/netip"
	"reflect"
	"testing"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/faults"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/ipid"
	"github.com/netsec-lab/rovista/internal/tcpsim"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }
func ip(s string) netip.Addr    { return netip.MustParseAddr(s) }

// threeASWorld: AS 1 (client) — AS 2 (vVP) — AS 3 (tNode), all connected
// through provider AS 10.
func threeASWorld(t *testing.T) (*Network, *Host, *Host, *Host) {
	t.Helper()
	g := bgp.NewGraph()
	g.Link(10, 1, bgp.Customer)
	g.Link(10, 2, bgp.Customer)
	g.Link(10, 3, bgp.Customer)
	g.AS(1).Originated = []netip.Prefix{pfx("10.1.0.0/16")}
	g.AS(2).Originated = []netip.Prefix{pfx("10.2.0.0/16")}
	g.AS(3).Originated = []netip.Prefix{pfx("10.3.0.0/16")}
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	n := NewNetwork(g)
	client := NewHost(ip("10.1.0.1"), 1, ipid.Global, 1)
	vvp := NewHost(ip("10.2.0.1"), 2, ipid.Global, 2)
	tnode := NewHost(ip("10.3.0.1"), 3, ipid.Global, 3, 443)
	n.AddHost(client)
	n.AddHost(vvp)
	n.AddHost(tnode)
	return n, client, vvp, tnode
}

func TestSynSynAckRstExchange(t *testing.T) {
	n, client, _, tnode := threeASWorld(t)
	s := NewSim(n, 7)

	var got []Packet
	client.Handler = func(_ *Sim, pkt Packet) bool {
		got = append(got, pkt)
		return false // fall through: default automaton RSTs the SYN-ACK
	}
	// Client sends a real (unspoofed) SYN to the tNode's open port.
	s.At(0, func() { s.SendFrom(client, client.Addr, tnode.Addr, 40000, 443, tcpsim.SYN) })
	s.Run(30)

	if len(got) != 1 {
		t.Fatalf("client received %d packets, want 1 SYN-ACK", len(got))
	}
	if got[0].Kind != tcpsim.SYNACK || got[0].Src != tnode.Addr {
		t.Fatalf("got %+v", got[0])
	}
	// The client's automatic RST must have cancelled the tNode's RTO: no
	// retransmissions pending.
	if tnode.TCP.PendingCount() != 0 {
		t.Fatal("tNode still has pending retransmission after RST")
	}
}

func TestClosedPortRst(t *testing.T) {
	n, client, _, tnode := threeASWorld(t)
	s := NewSim(n, 7)
	var got []Packet
	client.Handler = func(_ *Sim, pkt Packet) bool { got = append(got, pkt); return true }
	s.At(0, func() { s.SendFrom(client, client.Addr, tnode.Addr, 40000, 81, tcpsim.SYN) })
	s.Run(5)
	if len(got) != 1 || got[0].Kind != tcpsim.RST {
		t.Fatalf("got %+v, want RST", got)
	}
}

func TestSpoofedSynTriggersSynAckToVictim(t *testing.T) {
	n, client, vvp, tnode := threeASWorld(t)
	s := NewSim(n, 7)
	var vvpGot []Packet
	vvp.Handler = func(_ *Sim, pkt Packet) bool { vvpGot = append(vvpGot, pkt); return false }
	// Client spoofs the vVP's address toward the tNode.
	s.At(0, func() { s.SendFrom(client, vvp.Addr, tnode.Addr, 55555, 443, tcpsim.SYN) })
	s.Run(30)
	if len(vvpGot) == 0 || vvpGot[0].Kind != tcpsim.SYNACK || vvpGot[0].Src != tnode.Addr {
		t.Fatalf("vVP got %+v, want SYN-ACK from tNode", vvpGot)
	}
	// vVP's automatic RST reaches the tNode and cancels the RTO.
	if tnode.TCP.PendingCount() != 0 {
		t.Fatal("RST should have cancelled tNode retransmission")
	}
}

func TestRTORetransmissionWhenRSTBlocked(t *testing.T) {
	n, client, vvp, tnode := threeASWorld(t)
	// Outbound filtering: the vVP's AS cannot reach the tNode's prefix
	// (e.g. its route was ROV-filtered). Model by dropping at egress.
	n.EgressFilter[2] = func(pkt Packet) bool { return pkt.Dst == tnode.Addr }

	s := NewSim(n, 7)
	var vvpGot []Packet
	vvp.Handler = func(_ *Sim, pkt Packet) bool { vvpGot = append(vvpGot, pkt); return false }
	s.At(0, func() { s.SendFrom(client, vvp.Addr, tnode.Addr, 55555, 443, tcpsim.SYN) })
	s.Run(30)

	// The tNode retransmits (MaxRetries=2): the vVP sees the original
	// SYN-ACK plus two retransmissions.
	if len(vvpGot) != 3 {
		t.Fatalf("vVP saw %d SYN-ACKs, want 3 (1 + 2 RTO retransmissions)", len(vvpGot))
	}
}

func TestIngressFilterBlocksSynAck(t *testing.T) {
	n, client, vvp, tnode := threeASWorld(t)
	// Inbound filtering at the vVP's AS.
	n.IngressFilter[2] = func(pkt Packet) bool { return pkt.Src == tnode.Addr }
	s := NewSim(n, 7)
	count := 0
	vvp.Handler = func(_ *Sim, pkt Packet) bool { count++; return true }
	s.At(0, func() { s.SendFrom(client, vvp.Addr, tnode.Addr, 55555, 443, tcpsim.SYN) })
	s.Run(30)
	if count != 0 {
		t.Fatalf("vVP saw %d packets despite ingress filter", count)
	}
}

func TestIPIDGlobalCounterObservable(t *testing.T) {
	n, client, vvp, _ := threeASWorld(t)
	s := NewSim(n, 7)
	var ids []uint16
	client.Handler = func(_ *Sim, pkt Packet) bool {
		if pkt.Kind == tcpsim.RST && pkt.Src == vvp.Addr {
			ids = append(ids, pkt.IPID)
		}
		return true
	}
	// Probe the vVP with SYN-ACKs; each RST reply exposes the counter.
	for i := 0; i < 5; i++ {
		tt := float64(i) * 0.5
		s.At(tt, func() { s.SendFrom(client, client.Addr, vvp.Addr, uint16(41000+i), 443, tcpsim.SYNACK) })
	}
	s.Run(10)
	if len(ids) != 5 {
		t.Fatalf("got %d RSTs, want 5", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i]-ids[i-1] != 1 {
			t.Fatalf("idle host counter step = %d, want 1 (ids=%v)", ids[i]-ids[i-1], ids)
		}
	}
}

func TestIPIDBackgroundTraffic(t *testing.T) {
	n, client, vvp, _ := threeASWorld(t)
	vvp.BackgroundRate = 100 // pkt/s
	s := NewSim(n, 7)
	var ids []uint16
	var times []float64
	client.Handler = func(sim *Sim, pkt Packet) bool {
		if pkt.Kind == tcpsim.RST {
			ids = append(ids, pkt.IPID)
			times = append(times, sim.Now())
		}
		return true
	}
	for i := 0; i < 11; i++ {
		tt := float64(i) * 1.0
		s.At(tt, func() { s.SendFrom(client, client.Addr, vvp.Addr, uint16(42000+i), 443, tcpsim.SYNACK) })
	}
	s.Run(20)
	if len(ids) != 11 {
		t.Fatalf("got %d RSTs", len(ids))
	}
	// Mean growth per second should be ~100 (+1 for the RST itself).
	total := float64(ids[len(ids)-1] - ids[0])
	perSec := total / (times[len(times)-1] - times[0])
	if perSec < 60 || perSec > 140 {
		t.Fatalf("background growth %.1f pkt/s, want ~100", perSec)
	}
}

func TestTimeVaryingBackground(t *testing.T) {
	n, client, vvp, _ := threeASWorld(t)
	vvp.BackgroundFn = func(t float64) float64 { return 10 * t } // ramp
	s := NewSim(n, 7)
	var ids []uint16
	client.Handler = func(_ *Sim, pkt Packet) bool {
		if pkt.Kind == tcpsim.RST {
			ids = append(ids, pkt.IPID)
		}
		return true
	}
	for i := 0; i < 10; i++ {
		tt := float64(i)
		s.At(tt, func() { s.SendFrom(client, client.Addr, vvp.Addr, uint16(43000+i), 443, tcpsim.SYNACK) })
	}
	s.Run(20)
	// Increments should grow over time (ramping rate).
	first := ids[1] - ids[0]
	last := ids[len(ids)-1] - ids[len(ids)-2]
	if last <= first {
		t.Fatalf("ramping background not reflected: first=%d last=%d", first, last)
	}
}

func TestPacketLoss(t *testing.T) {
	n, client, vvp, _ := threeASWorld(t)
	n.LossRate = 1.0 // drop everything
	s := NewSim(n, 7)
	count := 0
	vvp.Handler = func(_ *Sim, pkt Packet) bool { count++; return true }
	s.At(0, func() { s.SendFrom(client, client.Addr, vvp.Addr, 40000, 443, tcpsim.SYNACK) })
	s.Run(5)
	if count != 0 {
		t.Fatal("fully lossy network delivered a packet")
	}
}

func TestTraceHook(t *testing.T) {
	n, client, vvp, _ := threeASWorld(t)
	s := NewSim(n, 7)
	var evs []TraceEvent
	s.Trace = func(ev TraceEvent) { evs = append(evs, ev) }
	s.At(0, func() { s.SendFrom(client, client.Addr, vvp.Addr, 40000, 443, tcpsim.SYNACK) })
	s.Run(5)
	// Two transmissions: probe out, RST back.
	if len(evs) != 2 {
		t.Fatalf("trace captured %d events, want 2", len(evs))
	}
	if evs[0].Dropped != DropNone || evs[1].Dropped != DropNone {
		t.Fatalf("unexpected drops: %+v", evs)
	}
}

func TestUnroutableDestination(t *testing.T) {
	n, client, _, _ := threeASWorld(t)
	s := NewSim(n, 7)
	var evs []TraceEvent
	s.Trace = func(ev TraceEvent) { evs = append(evs, ev) }
	s.At(0, func() { s.SendFrom(client, client.Addr, ip("99.9.9.9"), 1, 2, tcpsim.SYN) })
	s.Run(5)
	if len(evs) != 1 || evs[0].Dropped != DropNoRoute {
		t.Fatalf("evs = %+v", evs)
	}
}

func TestHijackedTrafficDropsAtWrongAS(t *testing.T) {
	// Host lives in AS 3 but AS 4 hijacks the covering prefix with a more
	// specific announcement: packets end up at AS 4 and never reach the
	// host (DropWrongAS).
	g := bgp.NewGraph()
	g.Link(10, 1, bgp.Customer)
	g.Link(10, 3, bgp.Customer)
	g.Link(10, 4, bgp.Customer)
	g.AS(1).Originated = []netip.Prefix{pfx("10.1.0.0/16")}
	g.AS(3).Originated = []netip.Prefix{pfx("10.3.0.0/16")}
	g.AS(4).Originated = []netip.Prefix{pfx("10.3.0.0/24")}
	if _, err := g.Converge(); err != nil {
		t.Fatal(err)
	}
	n := NewNetwork(g)
	client := NewHost(ip("10.1.0.1"), 1, ipid.Global, 1)
	victim := NewHost(ip("10.3.0.9"), 3, ipid.Global, 2, 443)
	n.AddHost(client)
	n.AddHost(victim)
	s := NewSim(n, 7)
	var evs []TraceEvent
	s.Trace = func(ev TraceEvent) { evs = append(evs, ev) }
	s.At(0, func() { s.SendFrom(client, client.Addr, victim.Addr, 4000, 443, tcpsim.SYN) })
	s.Run(5)
	if len(evs) != 1 || evs[0].Dropped != DropWrongAS {
		t.Fatalf("evs = %+v, want DropWrongAS", evs)
	}
}

func TestDuplicateHostPanics(t *testing.T) {
	n, client, _, _ := threeASWorld(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.AddHost(client)
}

func TestEventOrderingDeterministic(t *testing.T) {
	run := func() []uint16 {
		n, client, vvp, _ := threeASWorld(t)
		vvp.BackgroundRate = 50
		s := NewSim(n, 99)
		var ids []uint16
		client.Handler = func(_ *Sim, pkt Packet) bool { ids = append(ids, pkt.IPID); return true }
		for i := 0; i < 8; i++ {
			tt := float64(i) * 0.5
			s.At(tt, func() { s.SendFrom(client, client.Addr, vvp.Addr, uint16(5000+i), 443, tcpsim.SYNACK) })
		}
		s.Run(10)
		return ids
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic run length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic IDs at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRunReturnsEventCountAndAdvancesClock(t *testing.T) {
	n, _, _, _ := threeASWorld(t)
	s := NewSim(n, 1)
	fired := 0
	s.At(1, func() { fired++ })
	s.At(2, func() { fired++ })
	s.At(50, func() { fired++ })
	processed := s.Run(10)
	if processed != 2 || fired != 2 {
		t.Fatalf("processed=%d fired=%d", processed, fired)
	}
	if s.Now() != 10 {
		t.Fatalf("Now = %v, want 10", s.Now())
	}
	// The future event still fires later.
	s.Run(100)
	if fired != 3 {
		t.Fatalf("fired=%d, want 3", fired)
	}
}

func TestHostASNValidation(t *testing.T) {
	n, client, _, _ := threeASWorld(t)
	s := NewSim(n, 1)
	var evs []TraceEvent
	s.Trace = func(ev TraceEvent) { evs = append(evs, ev) }
	ghost := NewHost(ip("10.99.0.1"), inet.ASN(999), ipid.Global, 5)
	s.At(0, func() { s.SendFrom(ghost, ghost.Addr, client.Addr, 1, 2, tcpsim.SYN) })
	s.Run(1)
	if len(evs) != 1 || evs[0].Dropped != DropSrcGone {
		t.Fatalf("evs = %+v, want DropSrcGone", evs)
	}
}

func TestJitterReordersTightBursts(t *testing.T) {
	// With jitter larger than the send spacing, arrival order scrambles —
	// this is why §4.2 paces direct probes one second apart.
	n, client, vvp, _ := threeASWorld(t)
	n.Jitter = 0.2
	s := NewSim(n, 5)
	var order []uint16
	vvp.Handler = func(_ *Sim, pkt Packet) bool { order = append(order, pkt.SrcPort); return true }
	for i := 0; i < 20; i++ {
		tt := float64(i) * 0.001 // 1 ms spacing, far below the jitter
		sp := uint16(50000 + i)
		s.At(tt, func() { s.SendFrom(client, client.Addr, vvp.Addr, sp, 443, tcpsim.SYNACK) })
	}
	s.Run(5)
	if len(order) != 20 {
		t.Fatalf("delivered %d", len(order))
	}
	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("no reordering despite jitter >> spacing")
	}
}

func TestWideSpacingSurvivesJitter(t *testing.T) {
	// One-second spacing keeps ordering intact under the same jitter.
	n, client, vvp, _ := threeASWorld(t)
	n.Jitter = 0.2
	s := NewSim(n, 5)
	var order []uint16
	vvp.Handler = func(_ *Sim, pkt Packet) bool { order = append(order, pkt.SrcPort); return true }
	for i := 0; i < 10; i++ {
		tt := float64(i)
		sp := uint16(51000 + i)
		s.At(tt, func() { s.SendFrom(client, client.Addr, vvp.Addr, sp, 443, tcpsim.SYNACK) })
	}
	s.Run(15)
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("reordering at 1 s spacing: %v", order)
		}
	}
}

func TestGenerationTracksHostPopulation(t *testing.T) {
	n, _, _, _ := threeASWorld(t)
	g0 := n.Generation()
	n.AddHost(NewHost(ip("10.2.0.9"), 2, ipid.Global, 9))
	if n.Generation() <= g0 {
		t.Fatalf("generation did not advance: %d -> %d", g0, n.Generation())
	}
}

func TestCloneIsolatesHostState(t *testing.T) {
	n, _, vvp, _ := threeASWorld(t)
	vvp.BackgroundRate = 3
	clone := vvp.Clone(99)
	if clone.Addr != vvp.Addr || clone.ASN != vvp.ASN || clone.BackgroundRate != vvp.BackgroundRate {
		t.Fatal("clone lost identity fields")
	}
	if clone.IPID.Policy() != vvp.IPID.Policy() {
		t.Fatal("clone lost IP-ID policy")
	}
	// Evolving the clone must not move the original.
	before := vvp.IPID.Peek()
	s := NewSim(n.Overlay(clone), 1)
	for i := 0; i < 5; i++ {
		s.SendFrom(clone, clone.Addr, ip("10.3.0.1"), uint16(40000+i), 443, tcpsim.SYN)
	}
	s.Run(10)
	if vvp.IPID.Peek() != before {
		t.Fatal("evolving a clone advanced the original's counter")
	}
	if clone.TCP == vvp.TCP || clone.IPID == vvp.IPID {
		t.Fatal("clone shares mutable state with the original")
	}
}

func TestCloneDeterministicBySeed(t *testing.T) {
	_, _, vvp, _ := threeASWorld(t)
	vvp.BackgroundRate = 5
	a, b := vvp.Clone(7), vvp.Clone(7)
	a.advanceBackground(10, &faults.Profile{})
	b.advanceBackground(10, &faults.Profile{})
	if a.IPID.Peek() != b.IPID.Peek() {
		t.Fatal("same-seed clones diverged")
	}
	c := vvp.Clone(8)
	c.advanceBackground(10, &faults.Profile{})
	// Different seeds draw different background (may rarely coincide, but the
	// initial counter offsets already differ with overwhelming probability).
	if a.IPID.Peek() == c.IPID.Peek() {
		t.Log("warning: different-seed clones coincided (possible but unlikely)")
	}
}

func TestOverlayShadowsWithoutMutatingBase(t *testing.T) {
	n, _, vvp, tnode := threeASWorld(t)
	cv := vvp.Clone(1)
	view := n.Overlay(cv)
	if h, _ := view.HostAt(vvp.Addr); h != cv {
		t.Fatal("overlay lookup did not return the clone")
	}
	if h, _ := view.HostAt(tnode.Addr); h != tnode {
		t.Fatal("non-overlaid lookup changed")
	}
	if h, _ := n.HostAt(vvp.Addr); h != vvp {
		t.Fatal("base network sees the overlay")
	}
	// Delivery through the overlay reaches the clone, not the base host.
	got := 0
	cv.Handler = func(*Sim, Packet) bool { got++; return true }
	vvp.Handler = func(*Sim, Packet) bool { t.Fatal("base host received overlay traffic"); return true }
	s := NewSim(view, 2)
	client, _ := view.HostAt(ip("10.1.0.1"))
	s.SendFrom(client, client.Addr, vvp.Addr, 40000, 443, tcpsim.SYN)
	s.Run(5)
	if got == 0 {
		t.Fatal("overlay clone never received the packet")
	}
}

// TestPathCacheEquivalence: the forwarding-path cache is a pure memo — for
// every (src, dst) pair, Trace with the cache enabled must return exactly
// what it returns with the cache disabled, and a routing change followed by
// a re-convergence (which bumps the graph's routing version) must flow
// through the cached network just as it does through the uncached one.
func TestPathCacheEquivalence(t *testing.T) {
	n, client, vvp, tnode := threeASWorld(t)

	type traceOut struct {
		path   []inet.ASN
		dst    *Host
		reason DropReason
	}
	traceAll := func() []traceOut {
		var out []traceOut
		for _, src := range []inet.ASN{1, 2, 3, 10} {
			for _, dst := range []netip.Addr{client.Addr, vvp.Addr, tnode.Addr, ip("10.9.0.1")} {
				p, h, r := n.Trace(src, Packet{Src: client.Addr, Dst: dst})
				out = append(out, traceOut{append([]inet.ASN(nil), p...), h, r})
			}
		}
		return out
	}

	cached := traceAll() // warm + read through the cache
	n.DisablePathCache = true
	uncached := traceAll()
	n.DisablePathCache = false
	if !reflect.DeepEqual(cached, uncached) {
		t.Fatalf("cached traces differ from uncached:\n%+v\nvs\n%+v", cached, uncached)
	}
	// Second cached pass: entries are now all hits and must still agree.
	if again := traceAll(); !reflect.DeepEqual(again, uncached) {
		t.Fatalf("cache-hit traces differ from uncached:\n%+v\nvs\n%+v", again, uncached)
	}

	// Routing change: the tNode's AS withdraws its prefix. ConvergePrefixes
	// bumps the routing version, so the cache must drop its entries without
	// any explicit invalidation call.
	n.Graph.AS(3).Originated = nil
	if _, err := n.Graph.ConvergePrefixes([]netip.Prefix{pfx("10.3.0.0/16")}); err != nil {
		t.Fatal(err)
	}
	cached = traceAll()
	n.DisablePathCache = true
	uncached = traceAll()
	n.DisablePathCache = false
	if !reflect.DeepEqual(cached, uncached) {
		t.Fatalf("post-reconvergence cached traces differ from uncached:\n%+v\nvs\n%+v", cached, uncached)
	}
	if _, _, r := n.Trace(1, Packet{Src: client.Addr, Dst: tnode.Addr}); r != DropNoRoute {
		t.Fatalf("withdrawn prefix still routed through cache: reason=%v", r)
	}
}

// TestPathCacheSharedPrefixEntry: the cache keys on (src, interned covering
// prefix), so two destinations inside the same routed prefix share one
// entry. Nesting guarantees every per-hop decision is identical for both —
// this test pins that sharing never changes a trace, including for a
// more-specific carve-out where the two addresses fall under DIFFERENT
// most-specific prefixes and must NOT share.
func TestPathCacheSharedPrefixEntry(t *testing.T) {
	n, client, _, _ := threeASWorld(t)
	// AS 2 carves a more-specific out of AS 3's /16.
	n.Graph.AS(2).Originated = append(n.Graph.AS(2).Originated, pfx("10.3.128.0/17"))
	if _, err := n.Graph.Converge(); err != nil {
		t.Fatal(err)
	}
	dsts := []netip.Addr{
		ip("10.3.0.1"), ip("10.3.0.99"), // same /16, share an entry
		ip("10.3.128.1"), // inside the /17: different entry
		ip("10.3.200.5"), // also /17
	}
	type out struct {
		path []inet.ASN
		ok   bool
	}
	all := func() []out {
		var res []out
		for _, src := range []inet.ASN{1, 2, 3, 10} {
			for _, d := range dsts {
				p, _, r := n.Trace(src, Packet{Src: client.Addr, Dst: d})
				res = append(res, out{append([]inet.ASN(nil), p...), r == DropNone})
			}
		}
		return res
	}
	cached := all()
	second := all() // all hits now
	n.DisablePathCache = true
	uncached := all()
	n.DisablePathCache = false
	if !reflect.DeepEqual(cached, uncached) || !reflect.DeepEqual(second, uncached) {
		t.Fatalf("prefix-keyed cache changed traces:\ncached   %+v\nhits     %+v\nuncached %+v",
			cached, second, uncached)
	}
	// The /17 addresses must terminate at AS 2, the /16 ones at AS 3 — if an
	// entry were shared across the carve-out boundary this would fail.
	if p, _, _ := n.Trace(1, Packet{Src: client.Addr, Dst: ip("10.3.128.1")}); p[len(p)-1] != 2 {
		t.Fatalf("more-specific destination routed to %v, want AS 2", p[len(p)-1])
	}
	if p, _, _ := n.Trace(1, Packet{Src: client.Addr, Dst: ip("10.3.0.1")}); p[len(p)-1] != 3 {
		t.Fatalf("covering-prefix destination routed to %v, want AS 3", p[len(p)-1])
	}
}

// TestPathCacheUninternedScopeBypass: prefix-ID keying is only sound when
// every prefix the data plane consults is interned. Setting a DefaultScope by
// direct field edit plus BumpVersion (no re-convergence interns nothing)
// must flip the cache into bypass mode — correct, uncached answers — and the
// next full Converge interns the scope and restores caching, still with
// answers identical to the uncached network.
func TestPathCacheUninternedScopeBypass(t *testing.T) {
	n, client, _, _ := threeASWorld(t)

	probe := []netip.Addr{ip("10.3.0.1"), ip("10.9.0.1"), ip("10.2.0.1")}
	all := func() [][]inet.ASN {
		var res [][]inet.ASN
		for _, d := range probe {
			p, _, _ := n.Trace(1, Packet{Src: client.Addr, Dst: d})
			res = append(res, append([]inet.ASN(nil), p...))
		}
		return res
	}
	all() // warm the cache at the current version

	// Un-interned scope: 10.9.0.0/16 was never originated or converged.
	a := n.Graph.AS(1)
	a.DefaultRoute, a.HasDefault = 10, true
	a.DefaultScope = pfx("10.9.0.0/16")
	n.Graph.BumpVersion()

	cached := all()
	if n.paths.keyable {
		t.Fatal("cache stayed keyable with an un-interned DefaultScope in play")
	}
	n.DisablePathCache = true
	uncached := all()
	n.DisablePathCache = false
	if !reflect.DeepEqual(cached, uncached) {
		t.Fatalf("bypassed cache differs from uncached:\n%+v\nvs\n%+v", cached, uncached)
	}
	// The scoped destination must now take the default hop toward AS 10.
	if p, _, _ := n.Trace(1, Packet{Src: client.Addr, Dst: ip("10.9.0.1")}); len(p) < 2 || p[1] != 10 {
		t.Fatalf("scoped destination did not take the default route: %v", p)
	}

	// Converge interns the scope; keying becomes safe again.
	if _, err := n.Graph.Converge(); err != nil {
		t.Fatal(err)
	}
	cached = all()
	if !n.paths.keyable {
		t.Fatal("cache did not recover keyability after Converge interned the scope")
	}
	n.DisablePathCache = true
	uncached = all()
	n.DisablePathCache = false
	if !reflect.DeepEqual(cached, uncached) {
		t.Fatalf("post-converge cached traces differ from uncached:\n%+v\nvs\n%+v", cached, uncached)
	}
}
