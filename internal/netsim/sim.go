package netsim

import (
	"container/heap"
	"math/rand"
	"net/netip"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/tcpsim"
)

// event is one scheduled action in virtual time; seq breaks ties so
// execution order is fully deterministic.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// TraceEvent records one packet transmission attempt for debugging and the
// Figure-2 timeline rendering.
type TraceEvent struct {
	Time    float64
	Pkt     Packet
	Dropped DropReason
}

// Sim is the discrete-event engine. It is not safe for concurrent use.
type Sim struct {
	Net *Network
	// Trace, when set, receives every transmission attempt.
	Trace func(TraceEvent)

	now    float64
	events eventHeap
	seq    uint64
	rng    *rand.Rand
}

// NewSim creates a simulator over net with a deterministic seed.
func NewSim(net *Network, seed int64) *Sim {
	return &Sim{Net: net, rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn delay seconds from now.
func (s *Sim) After(delay float64, fn func()) { s.At(s.now+delay, fn) }

// Run processes events until the queue drains or virtual time exceeds
// until. It returns the number of events processed.
func (s *Sim) Run(until float64) int {
	n := 0
	for len(s.events) > 0 {
		if s.events[0].at > until {
			break
		}
		e := heap.Pop(&s.events).(event)
		s.now = e.at
		e.fn()
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// SendFrom transmits a packet from host h. src is the source address placed
// in the header — pass h.Addr for honest traffic or any other address to
// spoof. The IP-ID is drawn from h's counter after charging background
// traffic, which is exactly what a remote observer of h's counter sees.
func (s *Sim) SendFrom(h *Host, src, dst netip.Addr, srcPort, dstPort uint16, kind tcpsim.Kind) {
	h.advanceBackground(s.now)
	pkt := Packet{
		Src: src, Dst: dst,
		SrcPort: srcPort, DstPort: dstPort,
		Kind: kind,
		IPID: h.IPID.Next(dst),
	}
	s.transmit(h.ASN, pkt)
}

// transmit routes pkt from srcASN and schedules delivery.
func (s *Sim) transmit(srcASN inet.ASN, pkt Packet) {
	delay, dstHost, reason := s.Net.route(srcASN, pkt)
	if reason == DropNone && s.Net.LossRate > 0 && s.rng.Float64() < s.Net.LossRate {
		reason = DropLoss
	}
	if s.Trace != nil {
		s.Trace(TraceEvent{Time: s.now, Pkt: pkt, Dropped: reason})
	}
	if reason != DropNone {
		return
	}
	if s.Net.Jitter > 0 {
		delay += s.rng.Float64() * s.Net.Jitter
	}
	s.After(delay, func() { s.deliver(dstHost, pkt) })
}

// deliver hands pkt to the destination host: the custom handler first, then
// the TCP automaton; any response segments are transmitted in turn.
func (s *Sim) deliver(h *Host, pkt Packet) {
	if h.Handler != nil && h.Handler(s, pkt) {
		return
	}
	seg := tcpsim.Segment{
		Peer:      pkt.Src,
		PeerPort:  pkt.SrcPort,
		LocalPort: pkt.DstPort,
		Kind:      pkt.Kind,
	}
	out := h.TCP.HandleSegment(s.now, seg)
	for _, o := range out {
		s.SendFrom(h, h.Addr, o.Peer, o.LocalPort, o.PeerPort, o.Kind)
	}
	s.armRetransmit(h)
}

// armRetransmit schedules a wakeup for the host's next TCP deadline.
// Spurious wakeups are harmless: Tick only fires due flows.
func (s *Sim) armRetransmit(h *Host) {
	deadline, ok := h.TCP.NextDeadline()
	if !ok {
		return
	}
	s.At(deadline, func() {
		for _, o := range h.TCP.Tick(s.now) {
			s.SendFrom(h, h.Addr, o.Peer, o.LocalPort, o.PeerPort, o.Kind)
		}
		s.armRetransmit(h)
	})
}
