package netsim

import (
	"math"
	"math/rand"
	"net/netip"

	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/seedmix"
	"github.com/netsec-lab/rovista/internal/tcpsim"
)

// eventKind selects what a scheduled event does when it fires. Packet
// delivery and TCP timer wakeups — the two per-packet event shapes — carry
// their operands inline instead of in a closure: one round schedules
// hundreds of thousands of them, and the closure captures used to be among
// the largest allocation sources in the whole measurement path.
type eventKind uint8

const (
	// evFunc runs an arbitrary callback (the public At/After API).
	evFunc eventKind = iota
	// evDeliver hands pkt to host (the tail of a routed transmission).
	evDeliver
	// evTick fires the host's due TCP retransmissions and re-arms.
	evTick
)

// event is one scheduled action in virtual time; seq breaks ties so
// execution order is fully deterministic.
type event struct {
	at   float64
	seq  uint64
	kind eventKind
	fn   func() // evFunc only
	host *Host  // evDeliver, evTick
	pkt  Packet // evDeliver only
}

// before orders events by (time, sequence).
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is a binary min-heap ordered by before. It is hand-rolled
// rather than built on container/heap because the standard interface boxes
// every pushed and popped element into an `any`, which costs one heap
// allocation per event — per packet, on the measurement path.
type eventHeap []event

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(&s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release fn/host references
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s[l].before(&s[small]) {
			small = l
		}
		if r < n && s[r].before(&s[small]) {
			small = r
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return top
}

// TraceEvent records one packet transmission attempt for debugging and the
// Figure-2 timeline rendering.
type TraceEvent struct {
	Time    float64
	Pkt     Packet
	Dropped DropReason
}

// Sim is the discrete-event engine. It is not safe for concurrent use.
type Sim struct {
	Net *Network
	// Trace, when set, receives every transmission attempt.
	Trace func(TraceEvent)

	now     float64
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	tickBuf []tcpsim.Segment // scratch for TCP timer fan-out

	// flapStart/flapEnd, when flapEnd > flapStart, blackhole the forwarding
	// plane for that window of this simulation's virtual time — a transient
	// BGP flap drawn once per Sim from the fault profile.
	flapStart, flapEnd float64
}

// NewSim creates a simulator over net with a deterministic seed. Seeding is
// O(1) (splitmix64): simulators are constructed per measurement pair, so
// construction cost is round cost. When the network's fault profile enables
// flaps, the flap window is drawn here — the draws are profile-gated so
// clean simulations consume an identical rng stream.
func NewSim(net *Network, seed int64) *Sim {
	s := &Sim{
		Net:    net,
		rng:    rand.New(seedmix.NewSource(seed)),
		events: make(eventHeap, 0, 64),
	}
	if fp := &net.Faults; fp.FlapProb > 0 && s.rng.Float64() < fp.FlapProb {
		s.flapStart = s.rng.Float64() * fp.FlapSpan
		s.flapEnd = s.flapStart + fp.FlapDuration
	}
	return s
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// schedule enqueues an event at absolute virtual time t (clamped to now).
func (s *Sim) schedule(t float64, e event) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e.at = t
	e.seq = s.seq
	s.events.push(e)
}

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Sim) At(t float64, fn func()) { s.schedule(t, event{kind: evFunc, fn: fn}) }

// After schedules fn delay seconds from now.
func (s *Sim) After(delay float64, fn func()) { s.At(s.now+delay, fn) }

// Run processes events until the queue drains or virtual time exceeds
// until. It returns the number of events processed.
func (s *Sim) Run(until float64) int {
	n := 0
	for len(s.events) > 0 {
		if s.events[0].at > until {
			break
		}
		e := s.events.pop()
		s.now = e.at
		switch e.kind {
		case evFunc:
			e.fn()
		case evDeliver:
			s.deliver(e.host, e.pkt)
		case evTick:
			s.tick(e.host)
		}
		n++
	}
	if s.now < until {
		s.now = until
	}
	return n
}

// SendFrom transmits a packet from host h. src is the source address placed
// in the header — pass h.Addr for honest traffic or any other address to
// spoof. The IP-ID is drawn from h's counter after charging background
// traffic, which is exactly what a remote observer of h's counter sees.
func (s *Sim) SendFrom(h *Host, src, dst netip.Addr, srcPort, dstPort uint16, kind tcpsim.Kind) {
	h.advanceBackground(s.now, &s.Net.Faults)
	pkt := Packet{
		Src: src, Dst: dst,
		SrcPort: srcPort, DstPort: dstPort,
		Kind: kind,
		IPID: h.IPID.Next(dst),
	}
	s.transmit(h.ASN, pkt)
}

// transmit routes pkt from srcASN and schedules delivery. Every fault draw
// is gated on its profile knob, so a clean network consumes exactly the
// pre-fault rng stream.
func (s *Sim) transmit(srcASN inet.ASN, pkt Packet) {
	fp := &s.Net.Faults
	delay, hops, dstHost, reason := s.Net.route(srcASN, pkt)
	if reason == DropNone && s.flapEnd > s.flapStart && s.now >= s.flapStart && s.now < s.flapEnd {
		reason = DropFlap
	}
	if reason == DropNone && s.Net.LossRate > 0 && s.rng.Float64() < s.Net.LossRate {
		reason = DropLoss
	}
	if reason == DropNone && fp.LinkLossPerHop > 0 && hops > 0 {
		if s.rng.Float64() > math.Pow(1-fp.LinkLossPerHop, float64(hops)) {
			reason = DropLoss
		}
	}
	if s.Trace != nil {
		s.Trace(TraceEvent{Time: s.now, Pkt: pkt, Dropped: reason})
	}
	if reason != DropNone {
		return
	}
	if s.Net.Jitter > 0 {
		delay += s.rng.Float64() * s.Net.Jitter
	}
	if fp.ReorderProb > 0 && s.rng.Float64() < fp.ReorderProb {
		// Extra latency large enough to overtake later packets.
		delay += s.rng.Float64() * fp.ReorderDelay
	}
	s.schedule(s.now+delay, event{kind: evDeliver, host: dstHost, pkt: pkt})
	if fp.DupProb > 0 && s.rng.Float64() < fp.DupProb {
		// A duplicate arrives shortly after the original (routers dedup
		// nothing at L3); the event sequence number breaks exact ties.
		s.schedule(s.now+delay+s.rng.Float64()*0.5*fp.ReorderDelay, event{kind: evDeliver, host: dstHost, pkt: pkt})
	}
}

// deliver hands pkt to the destination host: the custom handler first, then
// the TCP automaton; any response segment is transmitted in turn.
func (s *Sim) deliver(h *Host, pkt Packet) {
	if h.Handler != nil && h.Handler(s, pkt) {
		return
	}
	seg := tcpsim.Segment{
		Peer:      pkt.Src,
		PeerPort:  pkt.SrcPort,
		LocalPort: pkt.DstPort,
		Kind:      pkt.Kind,
	}
	if o, ok := h.TCP.HandleSegment(s.now, seg); ok && s.allowResponse(h) {
		s.SendFrom(h, h.Addr, o.Peer, o.LocalPort, o.PeerPort, o.Kind)
	}
	s.armRetransmit(h)
}

// allowResponse gates automaton responses (SYN-ACKs, RSTs) through the
// host's token bucket when the fault profile rate-limits them. A suppressed
// response charges nothing against the IP-ID counter — the packet was never
// built, which is what makes rate limiting observable on the side channel.
func (s *Sim) allowResponse(h *Host) bool {
	fp := &s.Net.Faults
	if fp.RateLimitPPS <= 0 {
		return true
	}
	return h.allowResponse(s.now, fp.RateLimitPPS, fp.RateLimitBurst)
}

// tick fires the host's due TCP retransmissions and re-arms the timer.
// The segment buffer is owned by the Sim and reused across ticks; deliveries
// are scheduled, never run inline, so the loop cannot re-enter tick.
func (s *Sim) tick(h *Host) {
	s.tickBuf = h.TCP.Tick(s.now, s.tickBuf[:0])
	for _, o := range s.tickBuf {
		if s.allowResponse(h) {
			s.SendFrom(h, h.Addr, o.Peer, o.LocalPort, o.PeerPort, o.Kind)
		}
	}
	s.armRetransmit(h)
}

// armRetransmit schedules a wakeup for the host's next TCP deadline.
// Spurious wakeups are harmless: Tick only fires due flows.
func (s *Sim) armRetransmit(h *Host) {
	deadline, ok := h.TCP.NextDeadline()
	if !ok {
		return
	}
	s.schedule(deadline, event{kind: evTick, host: h})
}
