// Package netsim is the packet-level substrate beneath RoVista's
// measurements: a deterministic discrete-event simulator that forwards TCP
// segments across the AS-level data plane computed by internal/bgp, applies
// per-AS ingress/egress packet filters, models propagation delay and loss,
// drives each host's TCP automaton (internal/tcpsim), and charges every
// transmitted packet against the host's IP-ID counter (internal/ipid) —
// including lazily-sampled Poisson background traffic, which is what the
// side channel ultimately observes.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"sync"

	"github.com/netsec-lab/rovista/internal/bgp"
	"github.com/netsec-lab/rovista/internal/faults"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/ipid"
	"github.com/netsec-lab/rovista/internal/seedmix"
	"github.com/netsec-lab/rovista/internal/tcpsim"
)

// Packet is one TCP/IPv4 segment on the simulated wire.
type Packet struct {
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
	Kind             tcpsim.Kind
	IPID             uint16
}

// String implements fmt.Stringer.
func (p Packet) String() string {
	return fmt.Sprintf("%v:%d > %v:%d %v id=%d", p.Src, p.SrcPort, p.Dst, p.DstPort, p.Kind, p.IPID)
}

// PacketHandler lets a host intercept inbound packets (measurement clients
// record replies this way). Returning true consumes the packet; false hands
// it to the default TCP automaton.
type PacketHandler func(s *Sim, pkt Packet) bool

// Host is one end host attached to an AS.
type Host struct {
	Addr netip.Addr
	ASN  inet.ASN

	// TCP is the host's endpoint automaton.
	TCP *tcpsim.Endpoint
	// IPID assigns the IP identification field of transmitted packets.
	IPID *ipid.Counter

	// BackgroundRate is the host's mean background transmission rate in
	// packets/second; it advances a Global IP-ID counter between
	// observations (sampled as a Poisson process).
	BackgroundRate float64
	// BackgroundFn, when set, makes the rate time-varying (used to exercise
	// the nonstationary/ARIMA detection path). It overrides BackgroundRate.
	BackgroundFn func(t float64) float64

	// Handler optionally intercepts inbound packets.
	Handler PacketHandler

	lastBG float64
	rng    *rand.Rand

	// Response rate-limiter state (token bucket), used only when the
	// network's fault profile sets RateLimitPPS. Clones start with a fresh
	// bucket: the limit models the remote stack, not a shared resource.
	rlTokens float64
	rlLast   float64
	rlInit   bool
}

// NewHost builds a host with a compliant TCP endpoint listening on ports.
// All host randomness (the IP-ID offset and the background-traffic stream)
// comes from O(1)-seeded splitmix64 sources: hosts are also constructed on
// clone-per-pair hot paths, where math/rand's lag-table seeding is the
// single most expensive thing a round can do.
func NewHost(addr netip.Addr, asn inet.ASN, policy ipid.Policy, seed int64, ports ...uint16) *Host {
	return &Host{
		Addr: addr,
		ASN:  asn,
		TCP:  tcpsim.New(tcpsim.DefaultConfig(ports...)),
		IPID: ipid.NewCounter(policy, seed),
		rng:  rand.New(seedmix.NewSource(seed ^ 0x5eed)),
	}
}

// Clone returns an isolated copy of the host for one measurement context:
// same address, AS, TCP configuration, IP-ID policy, background model and
// packet handler, but fresh connection state and independent seed-derived
// randomness. Clones share nothing mutable with the original, so rounds
// running against clones of the same host cannot interfere — the property
// the parallel pair-measurement executor is built on.
func (h *Host) Clone(seed int64) *Host {
	return &Host{
		Addr:           h.Addr,
		ASN:            h.ASN,
		TCP:            h.TCP.Clone(),
		IPID:           h.IPID.Fork(seedmix.Mix(seed, 1)),
		BackgroundRate: h.BackgroundRate,
		BackgroundFn:   h.BackgroundFn,
		Handler:        h.Handler,
		rng:            rand.New(seedmix.NewSource(seedmix.Mix(seed, 2))),
	}
}

// advanceBackground charges background traffic accumulated since the last
// transmission against the global counter. The fault profile scales the rate
// (cross traffic the vVP's qualification never saw) and can add bursts; both
// are gated on the profile so clean runs draw nothing extra from h.rng —
// calibrated expectations depend on exact stream positions.
func (h *Host) advanceBackground(now float64, fp *faults.Profile) {
	if now < h.lastBG {
		// A fresh simulation restarted virtual time: begin a new background
		// epoch rather than freezing until the old timestamp is passed.
		h.lastBG = now
		return
	}
	if now == h.lastBG {
		return
	}
	rate := h.BackgroundRate
	if h.BackgroundFn != nil {
		// Midpoint rate over the interval approximates the time-varying
		// intensity well at our sub-second sampling.
		rate = h.BackgroundFn((h.lastBG + now) / 2)
	}
	if fp.CrossTrafficFactor > 0 {
		rate *= 1 + fp.CrossTrafficFactor
	}
	if rate > 0 {
		lambda := rate * (now - h.lastBG)
		h.IPID.Advance(poisson(h.rng, lambda))
	}
	if fp.CrossBurstProb > 0 && fp.CrossBurstMax > 0 && h.rng.Float64() < fp.CrossBurstProb {
		h.IPID.Advance(1 + h.rng.Intn(fp.CrossBurstMax))
	}
	h.lastBG = now
}

// allowResponse consumes one token from the host's response rate limiter,
// refilled at pps with capacity burst. Callers gate on pps > 0.
func (h *Host) allowResponse(now float64, pps float64, burst int) bool {
	if burst < 1 {
		burst = 1
	}
	if !h.rlInit || now < h.rlLast {
		// First use, or a fresh simulation restarted virtual time.
		h.rlInit = true
		h.rlLast = now
		h.rlTokens = float64(burst)
	}
	h.rlTokens += (now - h.rlLast) * pps
	if h.rlTokens > float64(burst) {
		h.rlTokens = float64(burst)
	}
	h.rlLast = now
	if h.rlTokens < 1 {
		return false
	}
	h.rlTokens--
	return true
}

// poisson samples a Poisson variate; for large λ it falls back to a normal
// approximation (λ here is at most a few hundred).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 200 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// FilterFunc drops a packet when it returns true.
type FilterFunc func(pkt Packet) bool

// Network is the static wiring: the routed AS graph, attached hosts, and
// per-AS packet filters.
type Network struct {
	Graph *bgp.Graph
	hosts map[netip.Addr]*Host
	// overlay, when non-nil, shadows hosts by address: lookups consult it
	// first. Overlay networks are read-only views created per measurement
	// context; only the base network's host population ever changes.
	overlay map[netip.Addr]*Host
	// generation counts host-population changes; consumers that cache
	// derived views (e.g. the runner's vVP discovery) compare generations to
	// auto-invalidate.
	generation uint64

	// EgressFilter drops packets as they leave their source AS (e.g. BCP38
	// anti-spoofing, or the tNode-side egress filtering behind the paper's
	// "inbound filtering" case).
	EgressFilter map[inet.ASN]FilterFunc
	// IngressFilter drops packets as they arrive at the destination AS.
	IngressFilter map[inet.ASN]FilterFunc

	// BaseDelay and PerHopDelay define propagation latency in seconds.
	BaseDelay   float64
	PerHopDelay float64
	// Jitter adds U(0, Jitter) seconds to each packet's delay; packets sent
	// close together can therefore arrive out of order — the §4.2 concern
	// behind the scanner's one-second probe spacing.
	Jitter float64
	// LossRate is an independent per-packet drop probability.
	LossRate float64

	// Faults is the armed fault-injection profile (zero: clean network).
	// Every simulator and host consults it; set it via ArmFaults so the
	// seeded per-host decisions (counter splits) are applied consistently.
	Faults faults.Profile
	// FaultSeed roots every address-keyed fault decision. It is independent
	// of the hosts' own seeds, so the same world can be measured under
	// different fault streams.
	FaultSeed int64
	// vanished marks hosts that churned away after qualification: HostAt
	// treats them as unattached. Shared (by pointer) with overlays; written
	// only between measurement stages, never while workers run.
	vanished map[netip.Addr]bool

	// DisablePathCache turns off forwarding-path memoization, forcing every
	// routed packet through a full LPM walk. Exists for the cached-vs-
	// uncached equivalence tests and for debugging; the cache never changes
	// results, only how often the pure path computation re-runs.
	DisablePathCache bool
	// paths memoizes Graph.DataPath by (srcASN, interned prefix ID),
	// invalidated by the graph's routing version. Shared (by pointer) with
	// every Overlay view.
	paths *pathCache
}

// NewNetwork wraps a converged BGP graph.
func NewNetwork(g *bgp.Graph) *Network {
	return &Network{
		Graph:         g,
		hosts:         make(map[netip.Addr]*Host),
		EgressFilter:  make(map[inet.ASN]FilterFunc),
		IngressFilter: make(map[inet.ASN]FilterFunc),
		BaseDelay:     0.005,
		PerHopDelay:   0.008,
		paths:         &pathCache{},
		vanished:      make(map[netip.Addr]bool),
	}
}

// ArmFaults installs a fault profile and applies its stable per-host
// decisions: hosts drawn by SplitCounterProb (keyed on the host address, so
// the decision is a property of the host, not of any one measurement) get
// per-CPU split IP-ID counters. Re-arming with the same profile and seed is
// a no-op; any change bumps the network generation so cached host-derived
// views (the runner's vVP discovery) refresh.
func (n *Network) ArmFaults(p faults.Profile, seed int64) {
	if n.Faults.Name == p.Name && n.FaultSeed == seed {
		return
	}
	n.Faults = p
	n.FaultSeed = seed
	if p.SplitCounterProb > 0 && p.SplitWays > 1 {
		for addr, h := range n.hosts {
			if faults.Bernoulli(p.SplitCounterProb, seed, faults.StreamSplit, int64(inet.V4Int(addr))) {
				h.IPID.EnableSplit(p.SplitWays)
			}
		}
	}
	n.generation++
}

// SetVanished marks a host as churned away: HostAt (and therefore routing
// and cloning) treat the address as unattached until ClearVanished. Callers
// must not race it against running simulations.
func (n *Network) SetVanished(addr netip.Addr) { n.vanished[addr] = true }

// IsVanished reports whether addr is currently marked as churned away. The
// incremental measurement round folds this into each cached pair's validity
// stamp: a result measured against a live host must not be reused while the
// host is vanished, and vice versa.
func (n *Network) IsVanished(addr netip.Addr) bool {
	return len(n.vanished) > 0 && n.vanished[addr]
}

// ClearVanished restores every churned host.
func (n *Network) ClearVanished() {
	for a := range n.vanished {
		delete(n.vanished, a)
	}
}

// CloneHost is Host.Clone plus the armed profile's per-measurement
// perturbations: with ResetProb, some clones carry a scheduled mid-round
// counter reset (a reboot as seen from the wire). The draw keys on the clone
// seed, so it is a pure function of the pair identity — parallel rounds stay
// bit-for-bit deterministic. On a clean network this is exactly Clone.
func (n *Network) CloneHost(h *Host, seed int64) *Host {
	c := h.Clone(seed)
	p := &n.Faults
	if p.ResetProb > 0 && faults.Bernoulli(p.ResetProb, n.FaultSeed, faults.StreamClone, seed) {
		span := p.ResetMaxPackets
		if span < 1 {
			span = 1
		}
		after := 1 + int(uint64(seedmix.Mix(n.FaultSeed, faults.StreamClone, seed, 1))%uint64(span))
		c.IPID.ResetAfter(after)
	}
	return c
}

// pathKey identifies one forwarding-path computation: the source AS and the
// most specific interned prefix covering the destination (NoPrefixID when no
// interned prefix covers it). Every prefix the data plane consults — FIB
// entries, originated prefixes, scoped defaults — is interned, and prefixes
// nest, so any interned prefix containing dst is a superset of dst's LPM
// prefix: two destinations with the same LPM ID are forwarded identically
// from every source. Keying on the ID instead of the address lets every host
// inside a prefix share one entry, which is what keeps the cache small at
// paper scale (many hosts, few routed prefixes).
type pathKey struct {
	src inet.ASN
	dst bgp.PrefixID
}

// pathEntry is one memoized Graph.DataPath result. The path slice is shared
// by every cache hit: consumers treat traced paths as immutable. epoch is
// the graph routing version the entry was computed at; the entry is valid
// while epoch >= Graph.AffectedEpoch(key's prefix ID).
type pathEntry struct {
	path      []inet.ASN
	delivered bool
	epoch     uint64
}

// pathCache memoizes the pure AS-path computation beneath Trace. The BGP
// data plane is a function of (routing state, srcASN, dst) only. Entries are
// invalidated per prefix ID: each carries the routing version it was
// computed at and is compared against the graph's AffectedEpoch for its
// destination prefix, so an incremental re-convergence of a handful of
// prefixes (an event batch, a hijack, daily ROA churn) only invalidates the
// paths those prefixes — or their covered more-specifics — can influence,
// and the rest of the cache survives the version bump untouched. An RWMutex
// (rather than sync.Map) keeps the hit path to one read-lock: during the
// measure-pairs stage the network is read-only and every worker probes the
// same few (client, vVP, tNode) endpoints, so the cache is written a
// handful of times and read millions.
type pathCache struct {
	mu      sync.RWMutex
	version uint64
	// keyable records whether prefix-ID keying is sound for this version:
	// false when some forwarding-relevant prefix (an originated prefix or a
	// valid default scope) is not interned — possible after direct AS field
	// edits followed by BumpVersion instead of a re-converge — in which case
	// the cache is bypassed entirely until the next version.
	keyable bool
	m       map[pathKey]pathEntry
	// dstID memoizes the address → LPM-ID resolution, rebuilt only when the
	// intern table actually grew (dstGen tracks its generation): interning
	// can move an address to a new, more specific LPM prefix.
	dstID  map[netip.Addr]bgp.PrefixID
	dstGen uint64
}

// lpmID resolves dst to the cache's destination key.
func lpmID(g *bgp.Graph, dst netip.Addr) bgp.PrefixID {
	if id, ok := g.Prefixes().LPM(dst); ok {
		return id
	}
	return bgp.NoPrefixID
}

// cacheKeyingSafe reports whether every prefix the data plane can consult is
// interned. FIB entries are interned by construction (they are indexed by
// prefix ID); originated prefixes and default scopes are interned by the
// convergence path, but direct mutation of AS fields between convergences
// can leave them out, and then two addresses sharing an LPM ID may diverge.
func (n *Network) cacheKeyingSafe() bool {
	tab := n.Graph.Prefixes()
	for _, a := range n.Graph.ASes {
		for _, p := range a.Originated {
			if _, ok := tab.IDOf(p); !ok {
				return false
			}
		}
		if a.HasDefault && a.DefaultScope.IsValid() {
			if _, ok := tab.IDOf(a.DefaultScope); !ok {
				return false
			}
		}
	}
	return true
}

// dataPath returns Graph.DataPath(src, dst), memoized. Safe for concurrent
// use by the parallel pair-measurement executor.
func (n *Network) dataPath(src inet.ASN, dst netip.Addr) ([]inet.ASN, bool) {
	c := n.paths
	if n.DisablePathCache || c == nil {
		return n.Graph.DataPath(src, dst)
	}
	ver := n.Graph.Version()

	c.mu.RLock()
	if c.version != ver {
		// Version transition: re-check the keying invariant and refresh the
		// address→ID memo if the intern table grew. Entries are NOT dropped —
		// each is validated per prefix ID against the graph's affected
		// epochs, so paths untouched by the convergence keep hitting.
		c.mu.RUnlock()
		c.mu.Lock()
		if c.version != ver {
			c.version = ver
			c.keyable = n.cacheKeyingSafe()
			if gen := n.Graph.Prefixes().Gen(); gen != c.dstGen || c.dstID == nil {
				c.dstGen = gen
				c.dstID = make(map[netip.Addr]bgp.PrefixID, 256)
			}
			if c.m == nil {
				c.m = make(map[pathKey]pathEntry, 256)
			}
		}
		c.mu.Unlock()
		c.mu.RLock()
	}
	if c.version != ver || !c.keyable {
		c.mu.RUnlock()
		return n.Graph.DataPath(src, dst)
	}
	id, haveID := c.dstID[dst]
	if haveID {
		if e, ok := c.m[pathKey{src, id}]; ok && e.epoch >= n.Graph.AffectedEpoch(id) {
			c.mu.RUnlock()
			return e.path, e.delivered
		}
	}
	c.mu.RUnlock()
	if !haveID {
		id = lpmID(n.Graph, dst)
	}
	path, delivered := n.Graph.DataPath(src, dst)
	c.mu.Lock()
	if c.version == ver && c.keyable {
		c.dstID[dst] = id
		c.m[pathKey{src, id}] = pathEntry{path: path, delivered: delivered, epoch: ver}
	}
	c.mu.Unlock()
	return path, delivered
}

// PathEpoch returns the validity stamp governing every forwarding path
// toward dst: the destination's interned LPM prefix id and the routing
// version at which forwarding toward that prefix last changed. This is the
// same per-prefix epoch the forwarding-path cache validates its entries
// against — exposed so higher layers (the measurement round's result cache)
// can reuse work across routing changes instead of invalidating blanketly
// on every version bump.
func (n *Network) PathEpoch(dst netip.Addr) (bgp.PrefixID, uint64) {
	return n.Graph.ForwardingEpoch(dst)
}

// InvalidatePathCache drops every memoized forwarding path. Routing
// re-convergence invalidates the cache automatically (it keys on the graph's
// routing version); this exists for callers that mutate forwarding-relevant
// AS fields directly without a re-converge.
func (n *Network) InvalidatePathCache() {
	if n.paths == nil {
		return
	}
	n.paths.mu.Lock()
	n.paths.m = nil
	n.paths.dstID = nil
	n.paths.keyable = false
	n.paths.version = 0
	n.paths.mu.Unlock()
}

// AddHost attaches a host. It panics on duplicate addresses — always a bug
// in world construction.
func (n *Network) AddHost(h *Host) {
	if _, dup := n.hosts[h.Addr]; dup {
		panic(fmt.Sprintf("netsim: duplicate host %v", h.Addr))
	}
	n.hosts[h.Addr] = h
	n.generation++
}

// Generation returns a counter that increases whenever the host population
// changes. Caches of host-derived state (the runner's vVP discovery, for
// one) key on it so additions like World.AddCandidateHosts invalidate them
// automatically.
func (n *Network) Generation() uint64 { return n.generation }

// Overlay returns a read-only view of the network in which the given hosts
// shadow their same-addressed originals. The view shares the base graph,
// filters and host population; only lookups for the overlaid addresses
// differ. Measurement contexts overlay cloned hosts so concurrent rounds
// never touch shared host state. The forwarding-path cache is shared (by
// pointer) with the base network: paths depend only on the graph, which
// overlays never change, so every concurrent context warms one cache.
func (n *Network) Overlay(hosts ...*Host) *Network {
	view := *n
	view.overlay = make(map[netip.Addr]*Host, len(hosts))
	for _, h := range hosts {
		view.overlay[h.Addr] = h
	}
	return &view
}

// HostAt returns the host bound to addr, if any, preferring overlay entries.
// Churned (vanished) hosts are reported as absent.
func (n *Network) HostAt(addr netip.Addr) (*Host, bool) {
	if len(n.vanished) > 0 && n.vanished[addr] {
		return nil, false
	}
	if h, ok := n.overlay[addr]; ok {
		return h, true
	}
	h, ok := n.hosts[addr]
	return h, ok
}

// Hosts returns the number of attached hosts.
func (n *Network) Hosts() int { return len(n.hosts) }

// AllAddrs returns every attached host address in ascending order — the
// scanner's stand-in for sweeping the IPv4 space with ZMap (unattached
// addresses would never answer, so enumerating them adds nothing).
func (n *Network) AllAddrs() []netip.Addr {
	out := make([]netip.Addr, 0, len(n.hosts))
	for a := range n.hosts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// AddrsIn returns attached host addresses inside p, ascending.
func (n *Network) AddrsIn(p netip.Prefix) []netip.Addr {
	var out []netip.Addr
	for a := range n.hosts {
		if p.Contains(a) {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// DropReason explains why a packet did not arrive.
type DropReason string

// Drop reasons surfaced in traces.
const (
	DropNone    DropReason = ""
	DropEgress  DropReason = "egress-filter"
	DropNoRoute DropReason = "no-route"
	DropWrongAS DropReason = "delivered-to-wrong-as"
	DropNoHost  DropReason = "no-such-host"
	DropIngress DropReason = "ingress-filter"
	DropLoss    DropReason = "random-loss"
	DropSrcGone DropReason = "source-as-missing"
	DropFlap    DropReason = "bgp-flap"
)

// Trace routes pkt from srcASN and reports the traversed AS path, the
// destination host when delivery succeeds, and the drop reason otherwise.
// This is the primitive beneath both packet delivery and the traceroute
// implementation in internal/trace. The returned path may be served from the
// forwarding-path cache and shared with other callers: treat it as
// immutable.
func (n *Network) Trace(srcASN inet.ASN, pkt Packet) (path []inet.ASN, dst *Host, reason DropReason) {
	if n.Graph.AS(srcASN) == nil {
		return nil, nil, DropSrcGone
	}
	if f := n.EgressFilter[srcASN]; f != nil && f(pkt) {
		return nil, nil, DropEgress
	}
	path, delivered := n.dataPath(srcASN, pkt.Dst)
	if !delivered {
		return path, nil, DropNoRoute
	}
	h, ok := n.HostAt(pkt.Dst)
	if !ok {
		return path, nil, DropNoHost
	}
	if path[len(path)-1] != h.ASN {
		// The data plane delivered the packet into an AS that originates a
		// covering prefix, but the host lives elsewhere (hijacked traffic).
		return path, nil, DropWrongAS
	}
	if f := n.IngressFilter[h.ASN]; f != nil && f(pkt) {
		return path, nil, DropIngress
	}
	return path, h, DropNone
}

// route decides the fate of a packet sent from srcASN toward pkt.Dst. hops
// is the traversed AS-path length (the per-hop fault model needs it).
func (n *Network) route(srcASN inet.ASN, pkt Packet) (delay float64, hops int, dst *Host, reason DropReason) {
	path, h, reason := n.Trace(srcASN, pkt)
	if reason != DropNone {
		return 0, 0, nil, reason
	}
	return n.BaseDelay + n.PerHopDelay*float64(len(path)), len(path), h, DropNone
}
