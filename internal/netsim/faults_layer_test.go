package netsim

import (
	"testing"

	"github.com/netsec-lab/rovista/internal/faults"
	"github.com/netsec-lab/rovista/internal/tcpsim"
)

// countDeliveries runs a one-packet-per-interval stream from the client to
// the tNode's open port and counts SYN-ACK responses arriving back.
func countDeliveries(n *Network, client, tnode *Host, packets int, seed int64) int {
	s := NewSim(n, seed)
	got := 0
	prevTrace := s.Trace
	s.Trace = func(ev TraceEvent) {
		if ev.Dropped == DropNone && ev.Pkt.Kind == tcpsim.SYNACK && ev.Pkt.Dst == client.Addr {
			got++
		}
		if prevTrace != nil {
			prevTrace(ev)
		}
	}
	for i := 0; i < packets; i++ {
		at := float64(i)
		s.At(at, func() {
			s.SendFrom(client, client.Addr, tnode.Addr, 40000, 443, tcpsim.SYN)
		})
	}
	s.Run(float64(packets) + 30)
	return got
}

// TestCleanNetworkLossless: with no fault profile armed, every SYN elicits a
// SYN-ACK — the baseline the gated fault draws must not perturb.
func TestCleanNetworkLossless(t *testing.T) {
	n, client, _, tnode := threeASWorld(t)
	if got := countDeliveries(n, client, tnode, 20, 1); got != 20 {
		t.Fatalf("clean network delivered %d/20 responses", got)
	}
}

// TestLinkLossDropsSomePackets: a per-hop loss profile must lose traffic on
// multi-hop paths, and the loss must be seed-deterministic.
func TestLinkLossDropsSomePackets(t *testing.T) {
	n, client, _, tnode := threeASWorld(t)
	n.ArmFaults(faults.Profile{Name: "loss", LinkLossPerHop: 0.2}, 7)
	a := countDeliveries(n, client, tnode, 50, 1)
	if a == 50 {
		t.Fatal("20% per-hop loss lost nothing over 50 round trips")
	}
	if b := countDeliveries(n, client, tnode, 50, 1); b != a {
		t.Fatalf("same-seed lossy runs diverged: %d vs %d", a, b)
	}
}

// TestRateLimitCapsResponses: a 1 pps SYN-ACK budget must suppress most
// responses to a burst while the suppressed responses still charge nothing.
func TestRateLimitCapsResponses(t *testing.T) {
	n, client, _, tnode := threeASWorld(t)
	n.ArmFaults(faults.Profile{Name: "rl", RateLimitPPS: 1, RateLimitBurst: 2}, 7)
	s := NewSim(n, 1)
	got := 0
	s.Trace = func(ev TraceEvent) {
		if ev.Dropped == DropNone && ev.Pkt.Kind == tcpsim.SYNACK && ev.Pkt.Dst == client.Addr {
			got++
		}
	}
	// 20 SYNs in one virtual second: budget is 2 burst tokens + ~1 refill.
	for i := 0; i < 20; i++ {
		at := float64(i) * 0.05
		s.At(at, func() {
			s.SendFrom(client, client.Addr, tnode.Addr, uint16(41000+i), 443, tcpsim.SYN)
		})
	}
	s.Run(40)
	if got > 6 {
		t.Fatalf("rate limiter let %d/20 SYN-ACKs through a ~3-token budget", got)
	}
	if got == 0 {
		t.Fatal("rate limiter suppressed everything including the burst allowance")
	}
}

// TestFlapWindowDeterministicPerSeed: the flap window is drawn once per Sim;
// equal seeds must agree and the blackhole must actually drop traffic.
func TestFlapWindowDeterministicPerSeed(t *testing.T) {
	n, client, _, tnode := threeASWorld(t)
	n.ArmFaults(faults.Profile{Name: "flap", FlapProb: 1, FlapDuration: 5, FlapSpan: 10}, 7)
	a := countDeliveries(n, client, tnode, 20, 3)
	b := countDeliveries(n, client, tnode, 20, 3)
	if a != b {
		t.Fatalf("same-seed flap runs diverged: %d vs %d", a, b)
	}
	if a == 20 {
		t.Fatal("a certain 5s flap over a 20s stream dropped nothing")
	}
}

// TestVanishedHostUnreachable: churned-out hosts drop packets with
// no-such-host, and ClearVanished restores them.
func TestVanishedHostUnreachable(t *testing.T) {
	n, client, vvp, _ := threeASWorld(t)
	n.SetVanished(vvp.Addr)
	if _, ok := n.HostAt(vvp.Addr); ok {
		t.Fatal("vanished host still resolvable")
	}
	if got := countDeliveries(n, client, vvp, 5, 1); got != 0 {
		t.Fatalf("vanished host answered %d probes", got)
	}
	n.ClearVanished()
	if _, ok := n.HostAt(vvp.Addr); !ok {
		t.Fatal("ClearVanished did not restore the host")
	}
}

// TestArmFaultsSplitsCounters: arming a split profile flips a deterministic
// subset of hosts to per-CPU lanes; re-arming the same profile is a no-op.
func TestArmFaultsSplitsCounters(t *testing.T) {
	n, _, _, _ := threeASWorld(t)
	p := faults.Profile{Name: "split", SplitCounterProb: 1, SplitWays: 2}
	n.ArmFaults(p, 7)
	split := 0
	for _, a := range n.AllAddrs() {
		h, _ := n.HostAt(a)
		if h.IPID.SplitWays() == 2 {
			split++
		}
	}
	if split == 0 {
		t.Fatal("probability-1 split profile split no counters")
	}
	gen := n.Generation()
	n.ArmFaults(p, 7) // identical profile+seed: must not bump the generation
	if n.Generation() != gen {
		t.Fatal("re-arming an identical profile invalidated caches")
	}
}

// TestCloneHostAppliesReset: with a reset profile armed, CloneHost plants a
// deterministic mid-round counter reset; the same clone seed plants the same
// reset, and a clean network's CloneHost matches plain Clone.
func TestCloneHostAppliesReset(t *testing.T) {
	n, _, vvp, _ := threeASWorld(t)

	clean := n.CloneHost(vvp, 5)
	plain := vvp.Clone(5)
	for i := 0; i < 10; i++ {
		if clean.IPID.Peek() != plain.IPID.Peek() {
			t.Fatal("clean CloneHost diverged from Clone")
		}
		clean.IPID.Advance(1)
		plain.IPID.Advance(1)
	}

	n.ArmFaults(faults.Profile{Name: "reset", ResetProb: 1, ResetMaxPackets: 4}, 7)
	a := n.CloneHost(vvp, 5)
	b := n.CloneHost(vvp, 5)
	diverged := false
	for i := 0; i < 10; i++ {
		if a.IPID.Peek() != b.IPID.Peek() {
			t.Fatalf("same-seed fault clones diverged at step %d", i)
		}
		before := a.IPID.Peek()
		a.IPID.Advance(1)
		b.IPID.Advance(1)
		if a.IPID.Peek() != before+1 {
			diverged = true // the reset re-randomized the counter
		}
	}
	if !diverged {
		t.Fatal("probability-1 reset profile never reset the clone's counter")
	}
}
