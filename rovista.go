// Package rovista is the public API of the RoVista reproduction: a
// simulation-backed implementation of "RoVista: Measuring and Analyzing the
// Route Origin Validation (ROV) in RPKI" (IMC 2023).
//
// The package wraps three layers:
//
//   - world construction: a synthetic Internet (AS topology, RPKI objects,
//     per-AS ROV policies, end hosts with IP-ID counters) that evolves over
//     simulated days;
//   - the measurement pipeline: collector snapshots select exclusively
//     RPKI-invalid test prefixes, ZMap-style scans qualify tNodes and vVPs,
//     and IP-ID side-channel rounds classify per-(vVP, tNode) reachability;
//   - scoring and analysis: per-AS ROV protection scores, longitudinal
//     timelines, collateral benefit/damage detection, and the baselines the
//     paper compares against.
//
// Quick start:
//
//	w, err := rovista.BuildWorld(rovista.SmallWorldConfig(1))
//	if err != nil { ... }
//	if err := w.AdvanceTo(0); err != nil { ... }
//	runner := rovista.NewRunner(w, rovista.DefaultRunnerConfig(1))
//	snap := runner.Measure()
//	for asn, score := range snap.Scores() { ... }
//
// The deeper layers (BGP engine, RPKI validation, the discrete-event packet
// simulator, the ARMA/ARIMA spike detector) live under internal/ and are
// documented there; this package re-exports the surfaces a downstream user
// needs to build and measure worlds.
package rovista

import (
	"io"

	"github.com/netsec-lab/rovista/internal/analysis"
	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/experiments"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/pipeline"
	"github.com/netsec-lab/rovista/internal/topology"
)

// ASN is an Autonomous System Number.
type ASN = inet.ASN

// WorldConfig controls world generation; see the field docs in
// internal/core for the full knob list.
type WorldConfig = core.WorldConfig

// World is a simulated Internet plus its evolution schedule.
type World = core.World

// Truth is the generator-side ground truth about one AS's ROV policy.
type Truth = core.Truth

// InvalidAnn is one scheduled misconfigured (RPKI-invalid) announcement.
type InvalidAnn = core.InvalidAnn

// WorldBuilder assembles a world in explicit stages (RPKI → ROV schedule →
// invalids → hosts → clients/collector) for callers that want to inspect or
// perturb a world mid-construction; BuildWorld runs all stages.
type WorldBuilder = core.WorldBuilder

// NewWorldBuilder validates cfg and returns a stage-by-stage world builder.
func NewWorldBuilder(cfg WorldConfig) (*WorldBuilder, error) { return core.NewWorldBuilder(cfg) }

// RunnerConfig tunes the measurement pipeline (background cutoff, minimum
// vVPs per AS, detector settings, pair-measurement worker count).
type RunnerConfig = core.RunnerConfig

// Runner executes measurement rounds against a world. Its stage fields
// (Prefixes, TNodes, VVPs, Measurer, Scorer) accept replacement pipeline
// stages; nil fields select the paper-faithful defaults.
type Runner = core.Runner

// Metrics holds one round's observability data: per-stage wall-clock
// timings and pair counters (Snapshot.Metrics).
type Metrics = pipeline.Metrics

// Snapshot is one full measurement round's results.
type Snapshot = core.Snapshot

// ASReport is the per-AS outcome of a round, including the ROV protection
// score and per-tNode verdicts.
type ASReport = core.ASReport

// Timeline is a longitudinal sequence of snapshots.
type Timeline = core.Timeline

// TopologyConfig controls synthetic AS-graph generation.
type TopologyConfig = topology.Config

// BuildWorld constructs a world from cfg.
func BuildWorld(cfg WorldConfig) (*World, error) { return core.BuildWorld(cfg) }

// SmallWorldConfig returns a fast ~124-AS world (tests, examples).
func SmallWorldConfig(seed int64) WorldConfig { return core.SmallWorldConfig(seed) }

// DefaultWorldConfig returns the full-size (~1200-AS) world.
func DefaultWorldConfig(seed int64) WorldConfig { return core.DefaultWorldConfig(seed) }

// NewRunner creates a measurement runner over a world.
func NewRunner(w *World, cfg RunnerConfig) *Runner { return core.NewRunner(w, cfg) }

// DefaultRunnerConfig returns the paper-default pipeline settings.
func DefaultRunnerConfig(seed int64) RunnerConfig { return core.DefaultRunnerConfig(seed) }

// CDFPoint is one point of a score CDF.
type CDFPoint = analysis.CDFPoint

// ScoreCDF computes the empirical CDF of protection scores (Figure 5).
func ScoreCDF(scores map[ASN]float64) []CDFPoint { return analysis.ScoreCDF(scores) }

// BenefitCohort is a detected collateral-benefit cohort (§7.3).
type BenefitCohort = analysis.BenefitCohort

// DamageCase is a detected collateral-damage case (§7.4).
type DamageCase = analysis.DamageCase

// DetectCollateralDamage runs the §7.4 forensic procedure over a snapshot.
func DetectCollateralDamage(w *World, snap *Snapshot, minScore float64) []DamageCase {
	return analysis.DetectCollateralDamage(w, snap, minScore)
}

// RunExperiment executes one named paper experiment ("fig1".."fig11",
// "table1", "tables2and3", "xval", "coverage", "bgpstream", "challenges",
// "survey", or an "ablate-*" name), writing its rendering to out. It
// reports whether the name was known.
func RunExperiment(name string, seed int64, out io.Writer) bool {
	switch name {
	case "fig1":
		experiments.Fig1(seed, out)
	case "fig2":
		experiments.Fig2(seed, out)
	case "fig3":
		experiments.Fig3(seed, out)
	case "fig4":
		experiments.Fig4(seed, out)
	case "fig5":
		experiments.Fig5(seed, out)
	case "fig6":
		experiments.Fig6(seed, out)
	case "fig7":
		experiments.Fig7(seed, out)
	case "fig8":
		experiments.Fig8(seed, out)
	case "fig9":
		experiments.Fig9(seed, out)
	case "fig10":
		experiments.Fig10(seed, out)
	case "fig11":
		experiments.Fig11(seed, out)
	case "table1":
		experiments.Table1(seed, out)
	case "tables2and3":
		experiments.Tables2And3(seed, out)
	case "xval":
		experiments.XVal(seed, out)
	case "coverage":
		experiments.Coverage(seed, out)
	case "bgpstream":
		experiments.BGPStream(seed, out)
	case "challenges":
		experiments.Challenges(seed, out)
	case "survey":
		experiments.Survey(seed, out)
	case "ablate-detector":
		experiments.AblationDetector(seed, out)
	case "ablate-unanimity":
		experiments.AblationUnanimity(seed, out)
	case "ablate-cutoff":
		experiments.AblationTrafficCutoff(seed, out)
	case "ablate-exclusive":
		experiments.AblationExclusivity(seed, out)
	default:
		return false
	}
	return true
}
