// Collateral benefit case study (the paper's §7.3 / Figure 8 KPN story):
// a transit provider deploys ROV mid-timeline; its single-homed customers
// inherit full protection the same day, while multihomed customers keep
// reaching RPKI-invalid prefixes through their other upstreams.
//
//	go run ./examples/collateral
package main

import (
	"fmt"
	"log"

	"github.com/netsec-lab/rovista"
	"github.com/netsec-lab/rovista/internal/rov"
	"github.com/netsec-lab/rovista/internal/topology"
)

func main() {
	cfg := rovista.SmallWorldConfig(7)
	w, err := rovista.BuildWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Pick the "KPN" role: a provider with single-homed stub customers.
	var provider rovista.ASN
	var stubs, multis []rovista.ASN
	for _, asn := range w.Topo.ByRank() {
		var s, m []rovista.ASN
		for _, c := range w.Topo.Customers(asn) {
			// True stubs only: a "single-homed" tier-2 still hears routes
			// over its peering links and would not inherit the benefit.
			if w.Topo.Info[c].Tier != topology.Stub {
				continue
			}
			if len(w.Topo.Providers(c)) == 1 {
				s = append(s, c)
			} else {
				m = append(m, c)
			}
		}
		if len(s) >= 2 && len(m) >= 1 {
			provider, stubs, multis = asn, s[:2], m[:1]
			break
		}
	}
	if provider == 0 {
		log.Fatal("no suitable provider in this topology")
	}

	// Freeze the cast, then script the provider's deployment at mid-run.
	deployDay := cfg.Days / 2
	for _, asn := range append(append([]rovista.ASN{provider}, stubs...), multis...) {
		w.Truth[asn].DeployDay = -1
		w.Truth[asn].Kind = "none"
		w.AddCandidateHosts(asn, 3)
	}
	w.Truth[provider].Policy = rov.Full()
	w.Truth[provider].Kind = "full"
	w.Truth[provider].DeployDay = deployDay

	fmt.Printf("provider %v deploys ROV on day %d\n", provider, deployDay)
	fmt.Printf("single-homed customers: %v\nmultihomed customers:  %v\n\n", stubs, multis)

	runner := rovista.NewRunner(w, rovista.DefaultRunnerConfig(7))
	tl, err := runner.RunTimeline(cfg.Days / 10)
	if err != nil {
		log.Fatal(err)
	}

	show := func(role string, asn rovista.ASN) {
		days, scores := tl.ScoreSeries(asn)
		fmt.Printf("%-22s %v:", role, asn)
		for i := range days {
			fmt.Printf(" (%3d, %3.0f%%)", days[i], scores[i])
		}
		fmt.Println()
	}
	show("provider", provider)
	for _, s := range stubs {
		show("single-homed customer", s)
	}
	for _, m := range multis {
		show("multihomed customer", m)
	}

	fmt.Println("\nThe single-homed customers jump to 100% on the provider's deploy day;")
	fmt.Println("the multihomed ones keep routing around it — exactly Figure 8.")
}
