// Quickstart: build a small simulated Internet, run one RoVista measurement
// round, and print each AS's ROV protection score next to its ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/netsec-lab/rovista"
)

func main() {
	// A ~124-AS world with RPKI deployment schedules, misconfigured
	// announcements, and hosts carrying IP-ID side channels.
	w, err := rovista.BuildWorld(rovista.SmallWorldConfig(42))
	if err != nil {
		log.Fatal(err)
	}
	// Advance to day 0: the relying party validates the repositories and
	// BGP converges under each AS's ROV policy.
	if err := w.AdvanceTo(0); err != nil {
		log.Fatal(err)
	}

	// One full measurement round: select test prefixes from the collector,
	// qualify tNodes and vVPs, run the IP-ID side-channel rounds, score.
	runner := rovista.NewRunner(w, rovista.DefaultRunnerConfig(42))
	snap := runner.Measure()

	fmt.Printf("tNodes: %d, vVPs discovered: %d, ASes scored: %d\n\n",
		len(snap.TNodes), snap.AllVVPs, len(snap.Reports))

	scores := snap.Scores()
	asns := make([]rovista.ASN, 0, len(scores))
	for asn := range scores {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool {
		if scores[asns[i]] != scores[asns[j]] {
			return scores[asns[i]] > scores[asns[j]]
		}
		return asns[i] < asns[j]
	})

	fmt.Printf("%10s %8s %25s\n", "ASN", "score", "ground truth")
	for _, asn := range asns {
		truth := w.Truth[asn]
		label := truth.Kind
		if truth.DeployDay < 0 {
			label = "never deploys"
		}
		fmt.Printf("%10v %7.1f%% %25s\n", asn, scores[asn], label)
	}

	fmt.Println("\nNote the ASes scoring 100% with \"never deploys\": they sit behind")
	fmt.Println("filtering providers — the collateral benefit of §7.3.")
}
