// Hijack impact study (the paper's §7.5 BGPStream analysis): generate
// hijack events against the simulated Internet, measure each one's blast
// radius, and show how RPKI coverage plus deployed ROV contains them.
//
//	go run ./examples/hijacksim
package main

import (
	"fmt"
	"log"

	"github.com/netsec-lab/rovista"
	"github.com/netsec-lab/rovista/internal/hijack"
)

func main() {
	w, err := rovista.BuildWorld(rovista.SmallWorldConfig(11))
	if err != nil {
		log.Fatal(err)
	}
	if err := w.AdvanceTo(0); err != nil {
		log.Fatal(err)
	}

	// Score the world first so hijack paths can be joined with scores.
	runner := rovista.NewRunner(w, rovista.DefaultRunnerConfig(11))
	snap := runner.Measure()
	fmt.Printf("world measured: %d ASes scored\n\n", len(snap.Reports))

	events := hijack.Generate(w, 100, 11)
	reports := hijack.Analyze(w, snap.Scores(), events)
	s := hijack.Summarize(reports)

	fmt.Printf("hijack reports analyzed:     %d\n", s.Total)
	fmt.Printf("RPKI-covered victims:        %d (%.0f%%)\n",
		s.RPKICovered, 100*float64(s.RPKICovered)/float64(s.Total))
	fmt.Printf("mean blast radius, covered:  %6.1f ASes\n", s.MeanSpreadCovered)
	fmt.Printf("mean blast radius, uncovered:%6.1f ASes\n", s.MeanSpreadUncovered)
	fmt.Printf("covered hijacks crossing a >90%%-score AS:   %d (customer-route exemptions)\n", s.CoveredHighScore)
	fmt.Printf("uncovered hijacks crossing a >90%%-score AS: %d (a ROA would have stopped these)\n", s.UncoveredHighScore)

	// Show a few of the biggest uncontained hijacks.
	fmt.Println("\nlargest uncovered hijacks:")
	printed := 0
	for _, r := range reports {
		if r.RPKICovered || r.SpreadASes == 0 {
			continue
		}
		fmt.Printf("  %v hijacked %v (victim %v): reached %d ASes\n",
			r.Attacker, r.Prefix, r.Victim, r.SpreadASes)
		printed++
		if printed == 5 {
			break
		}
	}
	fmt.Println("\nCovered hijacks spread less: the filtering core drops them — the")
	fmt.Println("paper's argument for registering ROAs even before deploying ROV.")
}
