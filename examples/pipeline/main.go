// Pipeline: the paper's data plumbing end to end, through real wire formats.
// A simulated Internet's collector view is archived as a RouteViews-style
// MRT dump and re-imported; the RPKI repositories are validated and the
// resulting VRPs delivered over the RPKI-to-Router protocol (RFC 8210); the
// two sides are joined to select the exclusively-invalid test prefixes that
// seed a measurement round.
//
//	go run ./examples/pipeline
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"

	"github.com/netsec-lab/rovista"
	"github.com/netsec-lab/rovista/internal/mrt"
	"github.com/netsec-lab/rovista/internal/rpki"
	"github.com/netsec-lab/rovista/internal/rtr"
)

func main() {
	w, err := rovista.BuildWorld(rovista.SmallWorldConfig(5))
	if err != nil {
		log.Fatal(err)
	}
	if err := w.AdvanceTo(0); err != nil {
		log.Fatal(err)
	}

	// 1. Archive the collector's view as MRT (what RouteViews publishes).
	view := w.Collector.Snapshot(w.Graph)
	var archive bytes.Buffer
	if err := mrt.WriteView(&archive, w.Collector.Name, view, w.Collector.Feeders, 1700000000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MRT archive: %d bytes for %d prefixes from %d feeders\n",
		archive.Len(), len(view.Prefixes()), len(w.Collector.Feeders))

	// 2. Re-import the archive, as the paper's pipeline ingests dumps.
	dump, err := mrt.ReadDump(&archive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-imported: %d observations, collector %q\n", len(dump.Observations()), dump.CollectorName)

	// 3. Deliver the relying party's VRPs over a real RTR session.
	cache := rtr.NewCache(1)
	cache.Update(w.VRPs)
	serverConn, clientConn := net.Pipe()
	go cache.Serve(serverConn)
	router := rtr.NewClient(clientConn)
	if err := router.Reset(); err != nil {
		log.Fatal(err)
	}
	vrps := router.VRPSet()
	fmt.Printf("RTR session: synced %d VRPs at serial %d\n", router.Len(), router.Serial())

	// 4. Join: find the exclusively-invalid prefixes (the test prefixes).
	byPrefix := map[string]struct {
		obs        int
		allInvalid bool
	}{}
	for _, o := range dump.Observations() {
		e := byPrefix[o.Prefix.String()]
		if e.obs == 0 {
			e.allInvalid = true
		}
		e.obs++
		if vrps.Validate(o.Prefix, o.Origin()) != rpki.Invalid {
			e.allInvalid = false
		}
		byPrefix[o.Prefix.String()] = e
	}
	count := 0
	fmt.Println("exclusively-invalid test prefixes recovered from the archive:")
	for p, e := range byPrefix {
		if e.allInvalid {
			fmt.Printf("  %s (%d observations)\n", p, e.obs)
			count++
		}
	}
	fmt.Printf("\n%d test prefixes — the inputs §4.1 scans for tNodes.\n", count)
}
