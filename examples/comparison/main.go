// Measurement comparison (the paper's §8): RoVista's multi-prefix protection
// score versus the single-RPKI-invalid-prefix method behind
// isbgpsafeyet.com, and versus passive control-plane inference.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"github.com/netsec-lab/rovista"
	"github.com/netsec-lab/rovista/internal/baselines"
	"github.com/netsec-lab/rovista/internal/inet"
)

func main() {
	w, err := rovista.BuildWorld(rovista.SmallWorldConfig(23))
	if err != nil {
		log.Fatal(err)
	}
	if err := w.AdvanceTo(0); err != nil {
		log.Fatal(err)
	}

	runner := rovista.NewRunner(w, rovista.DefaultRunnerConfig(23))
	snap := runner.Measure()
	scores := snap.Scores()
	fmt.Printf("RoVista scored %d ASes against %d tNodes\n\n", len(scores), len(snap.TNodes))

	// The single-prefix method: pick ONE of the world's invalid prefixes
	// as "the test prefix" and classify every AS by reachability to it.
	var testAddr = snap.TNodes[0].Addr
	candidates := make([]inet.ASN, 0, len(scores))
	for asn := range scores {
		candidates = append(candidates, asn)
	}
	verdicts := baselines.SinglePrefix(w.Graph, testAddr, candidates)
	fpfn := baselines.CompareSinglePrefix(verdicts, scores)
	fmt.Printf("single-prefix (isbgpsafeyet-style) vs RoVista over %d ASes:\n", fpfn.Compared)
	fmt.Printf("  false positives (safe but 0%% protected): %d (%.1f%%)\n",
		fpfn.FalsePositives, 100*fpfn.FPRate())
	fmt.Printf("  false negatives (unsafe but >90%% protected): %d (%.1f%%)\n",
		fpfn.FalseNegatives, 100*fpfn.FNRate())

	// Show disagreements concretely.
	fmt.Println("\ndisagreements:")
	shown := 0
	for _, asn := range candidates {
		s := scores[asn]
		v := verdicts[asn]
		if (v == baselines.Unsafe && s > 90) || (v == baselines.Safe && s == 0) {
			fmt.Printf("  %v: single-prefix says %v, RoVista score %.1f%%\n", asn, v, s)
			shown++
			if shown == 8 {
				break
			}
		}
	}
	if shown == 0 {
		fmt.Println("  (none under this seed — try another)")
	}

	// Passive control-plane inference for contrast.
	view := w.Collector.Snapshot(w.Graph)
	passive := baselines.PassiveInference(view, w.VRPs, candidates)
	agree, total := 0, 0
	for asn, filtering := range passive {
		total++
		if filtering == (scores[asn] > 90) {
			agree++
		}
	}
	fmt.Printf("\npassive control-plane inference agrees with RoVista for %d/%d ASes (%.0f%%)\n",
		agree, total, 100*float64(agree)/float64(total))
	fmt.Println("— visibility limits make passive labels unreliable, as §2.3 warns.")
}
