module github.com/netsec-lab/rovista

go 1.23
