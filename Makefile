# Developer entry points. `make check` is the tier-1 gate: everything a
# change must pass before it lands.

GO ?= go

.PHONY: check vet build test race bench clean

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run focuses on the packages with real concurrency: the parallel
# pair-measurement executor (core, pipeline) and the host/network state it
# clones and overlays (netsim).
race:
	$(GO) test -race ./internal/core/ ./internal/netsim/ ./internal/pipeline/

# Round benchmarks: serial vs parallel executor on one full measurement
# round. Identical results either way; only wall-clock differs.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMeasureRound' -benchtime 5x .

clean:
	$(GO) clean ./...
