# Developer entry points. `make check` is the tier-1 gate: everything a
# change must pass before it lands.

GO ?= go

.PHONY: check vet build test race bench clean

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run focuses on the packages with real concurrency: the parallel
# pair-measurement executor (core, pipeline), the host/network state it
# clones and overlays (netsim), the parallel convergence engine (bgp) and
# the parallel cone computation (topology).
race:
	$(GO) test -race ./internal/core/ ./internal/netsim/ ./internal/pipeline/ ./internal/bgp/ ./internal/topology/

# Round + convergence benchmarks with allocation reporting, distilled into
# BENCH_round.json (ns/op, B/op, allocs/op per benchmark) for diffing
# across commits.
bench:
	sh scripts/bench.sh

clean:
	$(GO) clean ./...
