# Developer entry points. `make check` is the tier-1 gate: everything a
# change must pass before it lands.

GO ?= go

.PHONY: check vet build test race fuzz-smoke robustness cover bench serve-bench serve-smoke loadgen-smoke campaign-smoke stream-smoke clean

check: vet build test race fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run focuses on the packages with real concurrency: the parallel
# pair-measurement executor (core, pipeline), the host/network state it
# clones and overlays (netsim), the parallel convergence engine (bgp), the
# parallel cone computation (topology), the serving subsystem's concurrent
# append/query paths (store, api), and the streaming-ingest pipeline's
# stage goroutines and fan-out hub (stream, rtr).
race:
	$(GO) test -race ./internal/core/ ./internal/netsim/ ./internal/pipeline/ ./internal/bgp/ ./internal/topology/ ./internal/store/ ./internal/api/ ./internal/stream/ ./internal/rtr/

# Short fuzzing passes over the parsers/state machines fuzz has the best
# shot at: the TCP endpoint's segment handling, the prefix-interning
# table's LPM invariants, and the campaign scheduler's exact-restoration
# invariant under arbitrary overlapping attack windows. Each target needs
# its own invocation (go test accepts one -fuzz pattern at a time).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzHandleSegment -fuzztime 5s ./internal/tcpsim/
	$(GO) test -run '^$$' -fuzz FuzzPrefixTable -fuzztime 5s ./internal/bgp/
	$(GO) test -run '^$$' -fuzz FuzzCampaignSchedule -fuzztime 5s ./internal/campaign/

# Metamorphic robustness harness: determinism under faults, classification
# F1 against ground truth, the no-silent-flip guard, and the profile sweep
# distilled into BENCH_robustness.json.
robustness:
	sh scripts/robustness.sh

# Per-package coverage with the committed 2-point soft floor
# (COVERAGE_baseline.txt; re-record with scripts/coverage.sh -update).
cover:
	sh scripts/coverage.sh

# Round + convergence benchmarks with allocation reporting, distilled into
# BENCH_round.json (ns/op, B/op, allocs/op per benchmark) for diffing
# across commits.
bench:
	sh scripts/bench.sh

# Serving-path benchmarks only: the rovistad mixed read workload against a
# populated 1k-AS/50-round store in serial, parallel, and append-storm
# variants, distilled into BENCH_serve.json with qps, qps-parallel, and
# p50/p99/p999 request latency.
serve-bench:
	sh scripts/bench.sh -serve

# End-to-end daemon smoke: start rovistad on a ~200-AS world, hit every
# endpoint, assert 200s and non-empty bodies, then SIGINT and require a
# clean exit (mirrors CI's serve-smoke job).
serve-smoke:
	sh scripts/serve_smoke.sh

# Load-harness smoke: cmd/loadgen against a 200-AS/10k-client in-process
# target with the append storm on; asserts nonzero qps and zero errors
# (mirrors CI's loadgen-smoke job).
loadgen-smoke:
	sh scripts/loadgen_smoke.sh

# Adversarial-scenario smoke: a seeded hijack campaign under paper faults
# (non-empty, deterministic quadrant report) plus /v1/whatif counterfactual
# queries against a live rovistad (mirrors CI's campaign-smoke job).
campaign-smoke:
	sh scripts/campaign_smoke.sh

# Streaming-ingest smoke: rovistad with the synthetic churn source driving
# rounds through the stage pipeline; a live SSE client must observe pushed
# score deltas end-to-end, the pipeline/sink/hub counters must appear in
# /metrics, and SIGINT must drain cleanly (mirrors CI's stream-smoke job).
stream-smoke:
	sh scripts/stream_smoke.sh

clean:
	$(GO) clean ./...
