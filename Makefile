# Developer entry points. `make check` is the tier-1 gate: everything a
# change must pass before it lands.

GO ?= go

.PHONY: check vet build test race fuzz-smoke robustness cover bench clean

check: vet build test race fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race run focuses on the packages with real concurrency: the parallel
# pair-measurement executor (core, pipeline), the host/network state it
# clones and overlays (netsim), the parallel convergence engine (bgp) and
# the parallel cone computation (topology).
race:
	$(GO) test -race ./internal/core/ ./internal/netsim/ ./internal/pipeline/ ./internal/bgp/ ./internal/topology/

# Short fuzzing passes over the two parsers/state machines fuzz has the best
# shot at: the TCP endpoint's segment handling and the prefix-interning
# table's LPM invariants. Each target needs its own invocation (go test
# accepts one -fuzz pattern at a time).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzHandleSegment -fuzztime 5s ./internal/tcpsim/
	$(GO) test -run '^$$' -fuzz FuzzPrefixTable -fuzztime 5s ./internal/bgp/

# Metamorphic robustness harness: determinism under faults, classification
# F1 against ground truth, the no-silent-flip guard, and the profile sweep
# distilled into BENCH_robustness.json.
robustness:
	sh scripts/robustness.sh

# Per-package coverage with the committed 2-point soft floor
# (COVERAGE_baseline.txt; re-record with scripts/coverage.sh -update).
cover:
	sh scripts/coverage.sh

# Round + convergence benchmarks with allocation reporting, distilled into
# BENCH_round.json (ns/op, B/op, allocs/op per benchmark) for diffing
# across commits.
bench:
	sh scripts/bench.sh

clean:
	$(GO) clean ./...
