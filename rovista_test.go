package rovista

import (
	"bytes"
	"strings"
	"testing"
)

// The public API must support the full documented workflow without touching
// internal packages.
func TestPublicAPIWorkflow(t *testing.T) {
	w, err := BuildWorld(SmallWorldConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(0); err != nil {
		t.Fatal(err)
	}
	runner := NewRunner(w, DefaultRunnerConfig(1))
	snap := runner.Measure()
	scores := snap.Scores()
	if len(scores) == 0 {
		t.Fatal("no scores via public API")
	}
	for asn, s := range scores {
		if s < 0 || s > 100 {
			t.Fatalf("%v score %v out of range", asn, s)
		}
	}
	cdf := ScoreCDF(scores)
	if len(cdf) != 101 || cdf[len(cdf)-1].Frac < 0.999 {
		t.Fatalf("CDF malformed: %d points", len(cdf))
	}
	// Ground truth and analysis surfaces are reachable.
	for asn := range scores {
		if w.Truth[asn] == nil {
			t.Fatalf("no ground truth for %v", asn)
		}
	}
	_ = DetectCollateralDamage(w, snap, 90)
}

func TestPublicAPITimeline(t *testing.T) {
	cfg := SmallWorldConfig(2)
	cfg.Days = 40
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runner := NewRunner(w, DefaultRunnerConfig(2))
	tl, err := runner.RunTimeline(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Snapshots) != 3 {
		t.Fatalf("snapshots = %d", len(tl.Snapshots))
	}
}

func TestRunExperimentDispatch(t *testing.T) {
	var buf bytes.Buffer
	if !RunExperiment("fig3", 1, &buf) {
		t.Fatal("fig3 not dispatched")
	}
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Fatalf("output = %q", buf.String())
	}
	if RunExperiment("not-an-experiment", 1, &buf) {
		t.Fatal("unknown experiment dispatched")
	}
}
