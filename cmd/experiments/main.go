// Command experiments regenerates the paper's tables and figures (the
// experiment index is in DESIGN.md; measured-vs-paper is in EXPERIMENTS.md).
//
// Usage:
//
//	experiments -all            # run everything
//	experiments fig5 table1     # run a subset
//	experiments -list           # show available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/netsec-lab/rovista/internal/experiments"
)

var registry = map[string]func(seed int64){
	"fig1":             func(s int64) { experiments.Fig1(s, os.Stdout) },
	"fig2":             func(s int64) { experiments.Fig2(s, os.Stdout) },
	"fig3":             func(s int64) { experiments.Fig3(s, os.Stdout) },
	"fig4":             func(s int64) { experiments.Fig4(s, os.Stdout) },
	"fig5":             func(s int64) { experiments.Fig5(s, os.Stdout) },
	"fig6":             func(s int64) { experiments.Fig6(s, os.Stdout) },
	"fig7":             func(s int64) { experiments.Fig7(s, os.Stdout) },
	"fig8":             func(s int64) { experiments.Fig8(s, os.Stdout) },
	"fig9":             func(s int64) { experiments.Fig9(s, os.Stdout) },
	"fig10":            func(s int64) { experiments.Fig10(s, os.Stdout) },
	"fig11":            func(s int64) { experiments.Fig11(s, os.Stdout) },
	"table1":           func(s int64) { experiments.Table1(s, os.Stdout) },
	"tables2and3":      func(s int64) { experiments.Tables2And3(s, os.Stdout) },
	"xval":             func(s int64) { experiments.XVal(s, os.Stdout) },
	"coverage":         func(s int64) { experiments.Coverage(s, os.Stdout) },
	"bgpstream":        func(s int64) { experiments.BGPStream(s, os.Stdout) },
	"challenges":       func(s int64) { experiments.Challenges(s, os.Stdout) },
	"survey":           func(s int64) { experiments.Survey(s, os.Stdout) },
	"ablate-detector":  func(s int64) { experiments.AblationDetector(s, os.Stdout) },
	"ablate-unanimity": func(s int64) { experiments.AblationUnanimity(s, os.Stdout) },
	"ablate-cutoff":    func(s int64) { experiments.AblationTrafficCutoff(s, os.Stdout) },
	"ablate-exclusive": func(s int64) { experiments.AblationExclusivity(s, os.Stdout) },
}

// order gives -all a stable, paper-shaped sequence.
var order = []string{
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
	"fig9", "fig10", "fig11", "table1", "tables2and3",
	"xval", "coverage", "bgpstream", "challenges", "survey",
	"ablate-detector", "ablate-unanimity", "ablate-cutoff", "ablate-exclusive",
}

func main() {
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiment names")
	seed := flag.Int64("seed", 1, "world seed")
	flag.Parse()

	if *list {
		names := make([]string, 0, len(registry))
		for n := range registry {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	names := flag.Args()
	if *all {
		names = order
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [-seed N] -all | <name>... (see -list)")
		os.Exit(2)
	}
	for _, n := range names {
		fn, ok := registry[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (see -list)\n", n)
			os.Exit(2)
		}
		fn(*seed)
		fmt.Println()
	}
}
