// Command worldgen generates a synthetic AS-level Internet and describes
// it: tier composition, customer cones, RPKI adoption schedule, invalid
// announcements, and host population. Useful for inspecting what the
// measurement pipelines run against.
//
// Usage:
//
//	worldgen [-seed N] [-size small|medium|large|10k|50k|74k] [-workers N] [-ranks K]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/mrt"
	"github.com/netsec-lab/rovista/internal/topology"
)

func main() {
	seed := flag.Int64("seed", 1, "generation seed")
	size := flag.String("size", "small", "world size: small, medium, large, 10k, 50k or 74k (alias: full)")
	workers := flag.Int("workers", 0, "build workers (0 = GOMAXPROCS); any count builds the identical world")
	ranks := flag.Int("ranks", 15, "print the top K ranked ASes")
	mrtOut := flag.String("mrt", "", "write the day-0 collector view as an MRT TABLE_DUMP_V2 archive to this file")
	flag.Parse()

	var cfg core.WorldConfig
	switch *size {
	case "small":
		cfg = core.SmallWorldConfig(*seed)
	case "medium":
		cfg = core.DefaultWorldConfig(*seed)
		cfg.Topology = topology.Config{
			Seed: *seed, NumTier1: 6, NumTier2: 24, NumTier3: 90, NumStub: 280,
			PrefixesPerAS: 1.3, Tier2PeerProb: 0.3, Tier3PeerProb: 0.03, MultihomeProb: 0.45,
		}
	case "large":
		cfg = core.DefaultWorldConfig(*seed)
	case "10k":
		cfg = core.LargeWorldConfig(*seed, 10_000)
	case "50k":
		cfg = core.LargeWorldConfig(*seed, 50_000)
	case "74k", "full":
		cfg = core.FullInternetConfig(*seed)
	default:
		fmt.Fprintf(os.Stderr, "worldgen: unknown size %q\n", *size)
		os.Exit(2)
	}
	cfg.BuildWorkers = *workers

	w, err := core.BuildWorld(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "worldgen:", err)
		os.Exit(1)
	}

	tiers := map[topology.Tier]int{}
	for _, asn := range w.Topo.ASNs {
		tiers[w.Topo.Info[asn].Tier]++
	}
	fmt.Printf("world seed %d (%s): %d ASes (%d tier-1, %d tier-2, %d tier-3, %d stubs), %d hosts\n",
		*seed, *size, len(w.Topo.ASNs),
		tiers[topology.Tier1], tiers[topology.Tier2], tiers[topology.Tier3], tiers[topology.Stub],
		w.Net.Hosts())

	deployers := map[string]int{}
	leaks := 0
	for _, tr := range w.Truth {
		if tr.DeployDay >= 0 {
			deployers[tr.Kind]++
		}
		if tr.DefaultLeak {
			leaks++
		}
	}
	fmt.Printf("ROV schedule: %v deployers over %d days; %d default-route leaks\n", deployers, cfg.Days, leaks)

	fmt.Printf("invalid announcements: %d total\n", len(w.Invalids))
	for _, inv := range w.Invalids {
		kind := "unannounced-space"
		if inv.Shared {
			kind = "shared-with-victim"
		} else if inv.Covered {
			kind = "covered-by-victim"
		}
		fmt.Printf("  %v announced by %v (victim %v, days %d-%d, %s)\n",
			inv.Prefix, inv.Origin, inv.Victim, inv.StartDay, inv.EndDay, kind)
	}

	if *mrtOut != "" {
		if err := w.AdvanceTo(0); err != nil {
			fmt.Fprintln(os.Stderr, "worldgen:", err)
			os.Exit(1)
		}
		f, err := os.Create(*mrtOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "worldgen:", err)
			os.Exit(1)
		}
		view := w.Collector.Snapshot(w.Graph)
		if err := mrt.WriteView(f, w.Collector.Name, view, w.Collector.Feeders, 0); err != nil {
			fmt.Fprintln(os.Stderr, "worldgen:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "worldgen:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote MRT archive with %d prefixes to %s\n", len(view.Prefixes()), *mrtOut)
	}

	fmt.Printf("\ntop %d ASes by customer cone:\n", *ranks)
	fmt.Printf("%6s %10s %8s %6s %10s %20s\n", "rank", "ASN", "tier", "cone", "RIR", "ROV schedule")
	for i, asn := range w.Topo.ByRank() {
		if i >= *ranks {
			break
		}
		info := w.Topo.Info[asn]
		tr := w.Truth[asn]
		sched := "never"
		if tr.DeployDay >= 0 {
			sched = fmt.Sprintf("%s@day%d", tr.Kind, tr.DeployDay)
			if tr.RollbackDay > 0 {
				sched += fmt.Sprintf(" (rolled back day %d)", tr.RollbackDay)
			}
		}
		fmt.Printf("%6d %10v %8v %6d %10v %20s\n", info.Rank, asn, info.Tier, info.ConeSize, info.RIR, sched)
	}
}
