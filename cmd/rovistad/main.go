// Command rovistad is the RoVista serving daemon: it runs the longitudinal
// measurement loop in the background — building a simulated Internet,
// measuring a round every -interval simulated days, appending each round to
// the snapshot store — while concurrently serving the query API over the
// accumulated history. This is the repo's miniature of the paper's public
// service: continuously refreshed per-AS ROV scores behind an HTTP API.
//
// Usage:
//
//	rovistad [-addr :8080] [-store DIR] [-seed N] [-size small|smoke|medium|large]
//	         [-rounds N] [-interval D] [-period DUR] [-workers N]
//	         [-faults none|paper|harsh] [-rate-burst N] [-rate-refill R]
//	         [-compact-every N] [-synth AxR] [-incremental] [-full-every N]
//	         [-contention-profile] [-stream mrt:<path>|synth|rtr:<addr>]
//	         [-stream-window S] [-stream-rate R] [-stream-events N]
//	         [-stream-speed X] [-stream-interval DUR]
//
// With -stream, rounds are driven by a live event stream instead of the
// day-advance loop: an internal/stream pipeline (source → coalesce → sink)
// batches route churn into one dirty-scope window per -stream-window virtual
// seconds and applies each batch through incremental convergence and
// re-scoring under the same worldMu the query path honours. Sources: replay
// of concatenated MRT RIB archives at -stream-speed× archive time, the
// seeded deterministic synthetic churn generator, or serial-notify polling
// of an RTR cache. Live modes (with or without -stream) also attach a score
// fan-out hub: GET /v1/stream is an SSE feed of per-round score deltas
// (filters: ?asn=, ?min_delta=), pushed after every measured round.
//
// Rounds are incremental by default: pair results whose routing context is
// unchanged since the previous round are reused (epoch-keyed cache), so a
// low-churn round costs O(churn) rather than O(pairs). Every -full-every
// rounds the daemon forces a from-scratch round as a self-check; cumulative
// pairs_reused / pairs_remeasured / full_rounds_forced counters are exposed
// under the "rounds" key of /metrics.
//
// When measuring live (not -synth), GET /v1/whatif answers counterfactual
// queries — "what changes if AS X deploys ROV / drops a route / gets
// hijacked / leaks" — against a copy-on-write overlay of the live world:
// the overlay shares the base graph's memory, re-converges only the dirty
// cone, and is discarded after the answer, so queries never mutate or block
// the serving path (they briefly serialize with round boundaries only).
//
// SIGINT/SIGTERM shut the daemon down gracefully: the measurement loop
// stops at the next round boundary, in-flight requests drain, the store is
// closed cleanly, and the exit code is 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/netip"
	"net/url"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/netsec-lab/rovista/internal/api"
	"github.com/netsec-lab/rovista/internal/campaign"
	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/faults"
	"github.com/netsec-lab/rovista/internal/store"
	"github.com/netsec-lab/rovista/internal/stream"
	"github.com/netsec-lab/rovista/internal/topology"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rovistad:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store", "", "snapshot store directory (default: a fresh temp dir)")
	seed := flag.Int64("seed", 1, "world generation seed")
	size := flag.String("size", "smoke", "world size: small, smoke (~200 ASes), medium or large")
	rounds := flag.Int("rounds", 0, "measurement rounds to run (0 = until the timeline ends)")
	interval := flag.Int("interval", 5, "simulated days between rounds")
	period := flag.Duration("period", 0, "wall-clock pause between rounds (0 = continuous)")
	workers := flag.Int("workers", 0, "pair-measurement workers (0 = all CPUs)")
	faultsName := flag.String("faults", "none", "fault-injection profile: none, paper or harsh")
	rateBurst := flag.Int("rate-burst", 100, "per-client rate-limit burst (0 disables limiting)")
	rateRefill := flag.Float64("rate-refill", 50, "per-client rate-limit refill tokens/sec")
	compactEvery := flag.Int("compact-every", 0, "compact the store every N appended rounds (0 = never)")
	synth := flag.String("synth", "", "skip measurement: pre-populate the store with AxR synthetic ASes×rounds (e.g. 1000x50) and serve that")
	incremental := flag.Bool("incremental", true, "reuse unchanged pair results between rounds (epoch-keyed cache)")
	fullEvery := flag.Int("full-every", 10, "force a from-scratch round every N rounds (0 = never)")
	contention := flag.Bool("contention-profile", false, "record mutex and block profiles (view at /debug/pprof via expvar tooling; small steady-state cost)")
	streamSpec := flag.String("stream", "", "drive rounds from a live event stream instead of the day-advance loop: mrt:<path>, synth, or rtr:<addr>")
	streamWindow := flag.Float64("stream-window", 2.0, "stream coalescing window in virtual seconds (one incremental round per window)")
	streamRate := flag.Float64("stream-rate", 10, "synth stream: events per virtual second")
	streamEvents := flag.Int("stream-events", 0, "synth stream: stop after N events (0 = endless)")
	streamSpeed := flag.Float64("stream-speed", 60, "mrt stream: replay speedup over archive timestamps")
	streamInterval := flag.Duration("stream-interval", 100*time.Millisecond, "wall pacing: synth inter-event gap / rtr poll period")
	flag.Parse()
	if *streamSpec != "" && *synth != "" {
		return fmt.Errorf("-stream needs live measurement; drop -synth")
	}

	if *contention {
		// Full-rate sampling: the serving path is designed to take zero
		// locks on cached reads, so an empty mutex/block profile under load
		// is the claim being verified, not an artifact of sampling.
		runtime.SetMutexProfileFraction(1)
		runtime.SetBlockProfileRate(1)
		log.Printf("contention profiling on (mutex fraction 1, block rate 1ns)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	dir := *storeDir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "rovistad-store-"); err != nil {
			return err
		}
		log.Printf("store: %s (temporary)", dir)
	}
	st, err := store.Open(dir, store.Config{})
	if err != nil {
		return err
	}
	defer st.Close()
	if st.Rounds() > 0 {
		log.Printf("store: resumed %d archived rounds from %s", st.Rounds(), dir)
	}

	loopDone := make(chan struct{})
	// convergeStats, when live-measuring, exposes the convergence engine's
	// counters (events applied, ASes touched, re-converge latency quantiles)
	// under the "converge" key of the /metrics expvar snapshot.
	var convergeStats func() map[string]any
	// hub fans live score deltas out to /v1/stream subscribers. Live modes
	// always attach it — every measured round publishes its movement — so
	// dashboards watch scores change without polling. Synth-serving mode has
	// no rounds, hence no hub (/v1/stream then answers 503).
	var hub *stream.Hub
	// whatIfHook answers /v1/whatif when the daemon measures live. worldMu
	// serializes counterfactual overlay forks against the measurement loop:
	// an overlay shares the base graph's memory and is only coherent while
	// the base is frozen, so the two never interleave.
	var (
		worldMu    sync.Mutex
		whatIfHook func(q url.Values) (any, error)
	)
	if *synth != "" {
		var ases, nRounds int
		if _, err := fmt.Sscanf(*synth, "%dx%d", &ases, &nRounds); err != nil || ases <= 0 || nRounds <= 0 {
			return fmt.Errorf("bad -synth %q (want ASESxROUNDS, e.g. 1000x50)", *synth)
		}
		if err := store.Synthesize(st, store.SynthConfig{ASes: ases, Rounds: nRounds, Seed: *seed}); err != nil {
			return err
		}
		log.Printf("synthesized %d rounds over %d ASes", nRounds, ases)
		close(loopDone)
	} else {
		runner, nTotal, err := buildRunner(*size, *seed, *workers, *faultsName, *rounds, *interval)
		if err != nil {
			return err
		}
		runner.Cfg.Incremental = *incremental
		rstats := &roundStats{fullEvery: *fullEvery}
		stats := runner.W.Graph.Stats()
		hub = stream.NewHub()
		pub := &deltaPublisher{hub: hub}
		var pipe *stream.Pipeline
		var sink *stream.LiveSink
		convergeStats = func() map[string]any {
			out := map[string]any{
				"converge": stats.Snapshot(),
				"rounds":   rstats.snapshot(),
			}
			if pipe != nil {
				out["stream_pipeline"] = pipe.Snapshot()
				out["stream_sink"] = sink.Snapshot()
			}
			return out
		}
		whatIf := &campaign.WhatIfEngine{W: runner.W}
		whatIfHook = func(q url.Values) (any, error) {
			wq, err := parseWhatIfQuery(q)
			if err != nil {
				return nil, err
			}
			worldMu.Lock()
			defer worldMu.Unlock()
			return whatIf.Query(wq)
		}
		measure := func(r int) error {
			worldMu.Lock()
			defer worldMu.Unlock()
			return measureRound(runner, st, r, *interval, rstats, pub)
		}
		// The first round runs before the listener opens so the API never
		// serves an empty store.
		if st.Rounds() == 0 {
			if err := measure(0); err != nil {
				return err
			}
		}
		if *streamSpec != "" {
			// Streamed rounds: the event pipeline replaces the day-advance
			// loop. Each coalesced batch is applied through incremental
			// convergence + re-scoring under worldMu, appended to the store,
			// and its score deltas pushed to /v1/stream subscribers.
			src, err := buildStreamSource(*streamSpec, runner.W, *seed,
				*streamRate, *streamEvents, *streamSpeed, *streamInterval)
			if err != nil {
				return err
			}
			sink = &stream.LiveSink{
				W:      runner.W,
				Runner: runner,
				Mu:     &worldMu,
				Append: func(snap *core.Snapshot) error { return st.Append(store.FromSnapshot(snap)) },
				Hub:    hub,
			}
			sink.SeedScores(pub.round, pub.prev) // continue from the baseline round, if any
			pipe = stream.NewPipeline(0, src,
				&stream.CoalesceStage{Window: *streamWindow, MaxDelay: time.Second},
				sink)
			log.Printf("streaming rounds from %s (window %.3gs virtual)", *streamSpec, *streamWindow)
			go func() {
				defer close(loopDone)
				if err := pipe.Run(ctx); err != nil {
					log.Printf("stream pipeline: %v", err)
					return
				}
				log.Printf("stream drained after %d streamed rounds; still serving", sink.Rounds.Load())
			}()
		} else {
			go func() {
				defer close(loopDone)
				for r := st.Rounds(); r < nTotal; r++ {
					if *period > 0 {
						select {
						case <-ctx.Done():
							return
						case <-time.After(*period):
						}
					} else if ctx.Err() != nil {
						return
					}
					if err := measure(r); err != nil {
						log.Printf("measurement loop: %v", err)
						return
					}
					if *compactEvery > 0 && (r+1)%*compactEvery == 0 {
						if err := st.Compact(); err != nil {
							log.Printf("compaction: %v", err)
							return
						}
						log.Printf("round %d: compacted store", r)
					}
				}
				log.Printf("measurement loop finished after %d rounds; still serving", st.Rounds())
			}()
		}
	}

	srv := &http.Server{
		Addr: *addr,
		Handler: api.New(st, api.Config{
			RateBurst:  *rateBurst,
			RateRefill: *rateRefill,
			Extra:      convergeStats,
			WhatIf:     whatIfHook,
			Stream:     hub,
		}).Handler(),
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("serving on http://%s (%d rounds archived)", ln.Addr(), st.Rounds())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal behaviour: a second ^C kills hard
	log.Printf("shutting down: draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-loopDone
	log.Printf("stopped cleanly with %d rounds archived", st.Rounds())
	return st.Close()
}

// parseWhatIfQuery maps /v1/whatif query parameters onto a campaign
// counterfactual: ?action=deploy-rov&asn=N, ?action=drop-route&asn=N&prefix=P,
// ?action=hijack&attacker=N&prefix=P[&victim=M], ?action=leak&asn=N.
func parseWhatIfQuery(q url.Values) (campaign.WhatIfQuery, error) {
	var out campaign.WhatIfQuery
	out.Action = q.Get("action")
	if out.Action == "" {
		return out, fmt.Errorf("missing ?action= (deploy-rov, drop-route, hijack, or leak)")
	}
	asn := func(key string) (inet.ASN, error) {
		v := q.Get(key)
		if v == "" {
			return 0, nil
		}
		n, err := strconv.ParseUint(v, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("bad %s %q", key, v)
		}
		return inet.ASN(n), nil
	}
	var err error
	if out.ASN, err = asn("asn"); err != nil {
		return out, err
	}
	if out.Attacker, err = asn("attacker"); err != nil {
		return out, err
	}
	if out.Victim, err = asn("victim"); err != nil {
		return out, err
	}
	if v := q.Get("prefix"); v != "" {
		p, err := netip.ParsePrefix(v)
		if err != nil {
			return out, fmt.Errorf("bad prefix %q", v)
		}
		out.Prefix = p
	}
	return out, nil
}

// roundStats accumulates the measurement loop's incremental-round counters.
// The loop goroutine writes while /metrics handlers read, so every counter
// is atomic.
type roundStats struct {
	fullEvery                                              int
	rounds, pairsReused, pairsRemeasured, fullRoundsForced atomic.Int64
}

func (s *roundStats) snapshot() map[string]any {
	return map[string]any{
		"measured":           s.rounds.Load(),
		"pairs_reused":       s.pairsReused.Load(),
		"pairs_remeasured":   s.pairsRemeasured.Load(),
		"full_rounds_forced": s.fullRoundsForced.Load(),
	}
}

// deltaPublisher diffs consecutive rounds' scores and fans the movement out
// to /v1/stream subscribers. Callers serialize via worldMu (measureRound
// runs under it), so the prev map needs no lock of its own.
type deltaPublisher struct {
	hub   *stream.Hub
	round uint32
	prev  map[inet.ASN]float64
}

func (p *deltaPublisher) publish(snap *core.Snapshot) {
	cur := snap.Scores()
	if deltas := stream.DiffScores(p.prev, cur); len(deltas) > 0 {
		p.round++
		p.hub.Publish(stream.Update{Round: p.round, Day: snap.Day, Deltas: deltas})
	}
	p.prev = cur
}

// buildStreamSource maps a -stream spec to a pipeline source stage.
func buildStreamSource(spec string, w *core.World, seed int64, rate float64, events int, speed float64, interval time.Duration) (stream.Stage, error) {
	switch {
	case spec == "synth":
		return &stream.SynthSource{
			Seed:     seed,
			Origins:  stream.WorldOrigins(w),
			Rate:     rate,
			Count:    events,
			Interval: interval,
		}, nil
	case strings.HasPrefix(spec, "mrt:"):
		return &stream.MRTReplaySource{Path: strings.TrimPrefix(spec, "mrt:"), Speed: speed}, nil
	case strings.HasPrefix(spec, "rtr:"):
		addr := strings.TrimPrefix(spec, "rtr:")
		return &stream.RTRSource{
			Dial: func() (io.ReadWriter, error) { return net.Dial("tcp", addr) },
			Poll: interval,
		}, nil
	default:
		return nil, fmt.Errorf("bad -stream %q (want mrt:<path>, synth, or rtr:<addr>)", spec)
	}
}

// measureRound advances the world to round r's day, measures, and appends.
// Every stats.fullEvery rounds it forces a from-scratch round, so a stale
// cache entry (which the equivalence tests say cannot exist) could never
// persist in the archive for more than fullEvery-1 rounds.
func measureRound(runner *core.Runner, st *store.Store, r, interval int, stats *roundStats, pub *deltaPublisher) error {
	day := r * interval
	if day > runner.W.Cfg.Days {
		day = runner.W.Cfg.Days
	}
	if err := runner.W.AdvanceTo(day); err != nil {
		return err
	}
	if stats.fullEvery > 0 && r > 0 && r%stats.fullEvery == 0 {
		runner.ForceFullRound()
		stats.fullRoundsForced.Add(1)
	}
	snap := runner.Measure()
	if err := st.Append(store.FromSnapshot(snap)); err != nil {
		return err
	}
	stats.rounds.Add(1)
	stats.pairsReused.Add(int64(snap.Metrics.PairsReused))
	stats.pairsRemeasured.Add(int64(snap.Metrics.PairsRemeasured))
	if pub != nil {
		pub.publish(snap)
	}
	log.Printf("round %d (day %d): %d ASes scored, status=%s, pairs reused=%d remeasured=%d",
		r, day, len(snap.Reports), snap.Status, snap.Metrics.PairsReused, snap.Metrics.PairsRemeasured)
	return nil
}

// buildRunner constructs the world and runner, returning the total round
// count the loop should produce.
func buildRunner(size string, seed int64, workers int, faultsName string, rounds, interval int) (*core.Runner, int, error) {
	cfg, err := worldConfig(size, seed)
	if err != nil {
		return nil, 0, err
	}
	profile, err := faults.ByName(faultsName)
	if err != nil {
		return nil, 0, err
	}
	cfg.Faults = profile
	w, err := core.BuildWorld(cfg)
	if err != nil {
		return nil, 0, err
	}
	rcfg := core.DefaultRunnerConfig(seed)
	rcfg.Workers = workers
	if profile.Enabled() {
		rcfg.Faults = profile
		rcfg.PairRetries = 2
		rcfg.RetryBackoff = 2
		rcfg.RequalifyVVPs = true
	}
	if rounds <= 0 {
		rounds = cfg.Days/interval + 1
	}
	log.Printf("world: %d ASes, %d hosts; %d rounds every %d days", len(w.Topo.ASNs), w.Net.Hosts(), rounds, interval)
	return core.NewRunner(w, rcfg), rounds, nil
}

// worldConfig mirrors cmd/rovista's sizes plus "smoke": a ~200-AS world
// small enough for CI's serve-smoke job yet big enough that every endpoint
// has data.
func worldConfig(size string, seed int64) (core.WorldConfig, error) {
	switch size {
	case "small":
		return core.SmallWorldConfig(seed), nil
	case "smoke":
		cfg := core.SmallWorldConfig(seed)
		cfg.Topology = topology.Config{
			Seed: seed, NumTier1: 4, NumTier2: 16, NumTier3: 60, NumStub: 120,
			PrefixesPerAS: 1.2, Tier2PeerProb: 0.3, Tier3PeerProb: 0.04, MultihomeProb: 0.4,
		}
		return cfg, nil
	case "medium":
		cfg := core.DefaultWorldConfig(seed)
		cfg.Topology = topology.Config{
			Seed: seed, NumTier1: 6, NumTier2: 24, NumTier3: 90, NumStub: 280,
			PrefixesPerAS: 1.3, Tier2PeerProb: 0.3, Tier3PeerProb: 0.03, MultihomeProb: 0.45,
		}
		return cfg, nil
	case "large":
		return core.DefaultWorldConfig(seed), nil
	default:
		return core.WorldConfig{}, fmt.Errorf("unknown size %q (want small, smoke, medium or large)", size)
	}
}
