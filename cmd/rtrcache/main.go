// Command rtrcache validates a simulated world's RPKI repositories and
// serves the resulting VRPs over the RPKI-to-Router protocol (RFC 8210) on
// a TCP listener — the role Routinator plays for real routers. Any RTR
// client can connect, Reset Query, and receive the full payload set.
//
// Usage:
//
//	rtrcache -listen 127.0.0.1:8282 -size small -seed 1 -day 0
//	rtrcache -print -size small                 # just print the VRPs
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/rtr"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8282", "TCP listen address")
	size := flag.String("size", "small", "world size: small, medium or large")
	seed := flag.Int64("seed", 1, "world seed")
	day := flag.Int("day", 0, "validation day")
	printOnly := flag.Bool("print", false, "print VRPs and exit instead of serving")
	oneshot := flag.Bool("oneshot", false, "serve a single connection, then exit")
	query := flag.String("query", "", "act as an RTR client: sync from this cache address and print a summary")
	flag.Parse()

	if *query != "" {
		conn, err := net.Dial("tcp", *query)
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		c := rtr.NewClient(conn)
		if err := c.Reset(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("synced %d VRPs at serial %d from %s\n", c.Len(), c.Serial(), *query)
		return
	}

	var cfg core.WorldConfig
	switch *size {
	case "small":
		cfg = core.SmallWorldConfig(*seed)
	case "medium", "large":
		cfg = core.DefaultWorldConfig(*seed)
	default:
		fmt.Fprintf(os.Stderr, "rtrcache: unknown size %q\n", *size)
		os.Exit(2)
	}
	w, err := core.BuildWorld(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.AdvanceTo(*day); err != nil {
		log.Fatal(err)
	}

	if *printOnly {
		for _, v := range w.VRPs.All() {
			fmt.Println(v)
		}
		return
	}

	cache := rtr.NewCache(uint16(*seed))
	cache.Update(w.VRPs)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	log.Printf("rtrcache: serving %d VRPs (serial %d) on %v", w.VRPs.Len(), cache.Serial(), ln.Addr())

	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		if *oneshot {
			if err := cache.Serve(conn); err != nil {
				log.Printf("rtrcache: session: %v", err)
			}
			conn.Close()
			return
		}
		go func(c net.Conn) {
			defer c.Close()
			if err := cache.Serve(c); err != nil {
				log.Printf("rtrcache: session: %v", err)
			}
		}(conn)
	}
}
