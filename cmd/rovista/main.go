// Command rovista builds a simulated Internet, runs one full RoVista
// measurement round at a chosen day, and prints per-AS ROV protection
// scores — the same pipeline the paper ran daily for 20 months.
//
// Usage:
//
//	rovista [-seed N] [-day D] [-size small|medium|large] [-top K] [-v]
//	        [-workers N] [-faults none|paper|harsh] [-progress] [-timings]
//	        [-rounds N] [-interval D] [-campaign N]
//	        [-cpuprofile FILE] [-memprofile FILE]
//
// With -rounds N (N > 1) the command runs a longitudinal loop instead of a
// single round: N rounds every -interval days starting at -day (default 0).
// With -campaign N it additionally schedules N seeded attacks (origin and
// subprefix hijacks, route leaks, forged-origin spoofs) across those rounds
// and reports each AS's observed protection as the paper's
// collateral-benefit/damage quadrants, cross-checked against the measured
// scores.
// SIGINT/SIGTERM interrupt the loop at the next round boundary; completed
// rounds are flushed normally and the exit code is 0 — partial longitudinal
// data is a valid result, not a failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"syscall"

	"github.com/netsec-lab/rovista/internal/campaign"
	"github.com/netsec-lab/rovista/internal/core"
	"github.com/netsec-lab/rovista/internal/export"
	"github.com/netsec-lab/rovista/internal/faults"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/topology"
)

func main() {
	seed := flag.Int64("seed", 1, "world generation seed")
	day := flag.Int("day", -1, "measurement day (default: last day of the timeline)")
	size := flag.String("size", "small", "world size: small, medium or large")
	top := flag.Int("top", 25, "print the top K scored ASes (0 = all)")
	verbose := flag.Bool("v", false, "print per-AS details")
	format := flag.String("format", "table", "output format: table, json or csv")
	workers := flag.Int("workers", 0, "pair-measurement workers (0 = all CPUs, 1 = serial; results are identical for any value)")
	faultsName := flag.String("faults", "none", "fault-injection profile: none, paper or harsh")
	progress := flag.Bool("progress", false, "print per-stage progress to stderr")
	timings := flag.Bool("timings", false, "print per-stage wall-clock timings and pair counters to stderr")
	rounds := flag.Int("rounds", 1, "measurement rounds to run (>1 switches to the longitudinal loop)")
	interval := flag.Int("interval", 5, "simulated days between rounds in -rounds mode")
	campaignN := flag.Int("campaign", 0, "schedule N seeded attacks across the rounds and report protection quadrants")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rovista:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rovista:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rovista:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rovista:", err)
			}
		}()
	}

	cfg, err := worldConfig(*size, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rovista:", err)
		os.Exit(2)
	}
	profile, err := faults.ByName(*faultsName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rovista:", err)
		os.Exit(2)
	}
	cfg.Faults = profile
	w, err := core.BuildWorld(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rovista:", err)
		os.Exit(1)
	}
	rcfg := core.DefaultRunnerConfig(*seed)
	rcfg.Workers = *workers
	if profile.Enabled() {
		// Under injected faults the pipeline runs with its robustness
		// countermeasures on: bounded retry with backoff and post-round vVP
		// re-qualification (clean runs skip both, preserving exact rng streams).
		rcfg.Faults = profile
		rcfg.PairRetries = 2
		rcfg.RetryBackoff = 2
		rcfg.RequalifyVVPs = true
	}
	if *progress {
		rcfg.Progress = func(stage string, done, total int) {
			fmt.Fprintf(os.Stderr, "\r%-16s %d/%d", stage, done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	runner := core.NewRunner(w, rcfg)

	var snap *core.Snapshot
	if *campaignN > 0 {
		ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stopSig()
		start := *day
		if start < 0 {
			start = 0
		}
		ccfg := campaign.DefaultConfig(*seed)
		ccfg.Rounds = *rounds
		ccfg.Interval = *interval
		ccfg.StartDay = start
		ccfg.Attacks = *campaignN
		rep, err := campaign.New(w, runner, ccfg).Run(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rovista:", err)
			os.Exit(1)
		}
		if len(rep.Timeline.Snapshots) == 0 {
			return // interrupted before the first round completed
		}
		if *format == "table" {
			fmt.Printf("campaign: %d attacks scheduled over %d rounds (%d launches skipped)\n",
				len(rep.Schedule), *rounds, len(rep.SkippedLaunches))
			for i, s := range rep.Schedule {
				fmt.Printf("  #%-2d rounds [%d,%d): %v\n", i, s.Start, s.End, s.Attack)
			}
			fmt.Printf("\nprotection quadrants (per AS x active attack x round):\n")
			for q := campaign.DamageAvoided; q <= campaign.Exposed; q++ {
				fmt.Printf("  %-19s %6d\n", q.String(), rep.Quadrants[q])
			}
			fmt.Printf("\nmeasured-score vs data-plane oracle: F1=%.3f accuracy=%.3f over %d (AS,round) checks\n",
				rep.F1, rep.Accuracy, rep.Confusion.Total())
			fmt.Printf("\nfinal round (day %d):\n", rep.Timeline.Days[len(rep.Timeline.Days)-1])
		}
		snap = rep.Timeline.Snapshots[len(rep.Timeline.Snapshots)-1]
	} else if *rounds > 1 {
		// Longitudinal mode: run the shared round loop under a signal
		// context so ^C flushes completed rounds instead of losing them.
		ctx, stopSig := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stopSig()
		start := *day
		if start < 0 {
			start = 0
		}
		if *format == "table" {
			fmt.Printf("world: %d ASes, %d hosts, %d invalid announcements; %d rounds every %d days from day %d\n",
				len(w.Topo.ASNs), w.Net.Hosts(), len(w.Invalids), *rounds, *interval, start)
		}
		tl, err := runner.RunRounds(ctx, start, *interval, *rounds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rovista:", err)
			os.Exit(1)
		}
		if len(tl.Snapshots) < *rounds {
			fmt.Fprintf(os.Stderr, "rovista: interrupted after %d/%d rounds; flushing completed results\n",
				len(tl.Snapshots), *rounds)
		}
		if len(tl.Snapshots) == 0 {
			return // interrupted before the first round completed: nothing to flush
		}
		if *format == "table" {
			fmt.Printf("\n%6s %6s %11s %7s %10s  %s\n", "round", "day", "scored ASes", "full%", "unanimity", "status")
			for i, s := range tl.Snapshots {
				// Computed inline per snapshot: FullProtectionSeries skips
				// empty rounds, so its positional indices drift from the
				// snapshot indices after any degraded round.
				full := 0.0
				if len(s.Reports) > 0 {
					n := 0
					for _, rep := range s.Reports {
						if rep.Score >= 100 {
							n++
						}
					}
					full = 100 * float64(n) / float64(len(s.Reports))
				}
				fmt.Printf("%6d %6d %11d %6.1f%% %9.1f%%  %s\n",
					i, tl.Days[i], len(s.Reports), full, 100*s.ConsistentPairFraction, s.Status)
			}
			fmt.Printf("\nfinal round (day %d):\n", tl.Days[len(tl.Days)-1])
		}
		snap = tl.Snapshots[len(tl.Snapshots)-1]
	} else {
		d := *day
		if d < 0 {
			d = cfg.Days
		}
		if *format == "table" {
			fmt.Printf("world: %d ASes, %d hosts, %d invalid announcements; measuring day %d\n",
				len(w.Topo.ASNs), w.Net.Hosts(), len(w.Invalids), d)
		}
		if err := w.AdvanceTo(d); err != nil {
			fmt.Fprintln(os.Stderr, "rovista:", err)
			os.Exit(1)
		}
		snap = runner.Measure()
	}
	if *timings {
		fmt.Fprint(os.Stderr, snap.Metrics.String())
	}

	switch *format {
	case "json":
		if err := export.FromSnapshot(snap).WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "rovista:", err)
			os.Exit(1)
		}
		return
	case "csv":
		if err := export.FromSnapshot(snap).WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "rovista:", err)
			os.Exit(1)
		}
		return
	case "table":
	default:
		fmt.Fprintf(os.Stderr, "rovista: unknown format %q\n", *format)
		os.Exit(2)
	}

	fmt.Printf("test prefixes: %d; qualified tNodes: %d; vVPs: %d; scored ASes: %d\n",
		snap.TestPrefixes, len(snap.TNodes), snap.AllVVPs, len(snap.Reports))
	if snap.Status.InsufficientData() {
		fmt.Printf("round degraded: %s — scores below reflect partial data, not zero protection\n", snap.Status)
	}
	fmt.Printf("per-(AS,tNode) unanimity: %.1f%%\n", 100*snap.ConsistentPairFraction)

	type row struct {
		asn inet.ASN
		rep *core.ASReport
	}
	rows := make([]row, 0, len(snap.Reports))
	for asn, rep := range snap.Reports {
		rows = append(rows, row{asn, rep})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].rep.Score != rows[j].rep.Score {
			return rows[i].rep.Score > rows[j].rep.Score
		}
		return rows[i].asn < rows[j].asn
	})
	if *top > 0 && len(rows) > *top {
		rows = rows[:*top]
	}
	fmt.Printf("\n%10s %8s %7s %10s %22s\n", "ASN", "score", "vVPs", "tNodes", "ground truth")
	for _, r := range rows {
		truth := w.Truth[r.asn].Kind
		if w.Truth[r.asn].DefaultLeak {
			truth += "+default-leak"
		}
		fmt.Printf("%10v %7.1f%% %7d %6d/%-3d %22s\n",
			r.asn, r.rep.Score, r.rep.VVPs, r.rep.TNodesFiltered, r.rep.TNodesMeasured, truth)
		if *verbose {
			for addr, filtered := range r.rep.Verdicts {
				fmt.Printf("    tNode %v filtered=%v\n", addr, filtered)
			}
		}
	}
}

func worldConfig(size string, seed int64) (core.WorldConfig, error) {
	switch size {
	case "small":
		return core.SmallWorldConfig(seed), nil
	case "medium":
		cfg := core.DefaultWorldConfig(seed)
		cfg.Topology = topology.Config{
			Seed: seed, NumTier1: 6, NumTier2: 24, NumTier3: 90, NumStub: 280,
			PrefixesPerAS: 1.3, Tier2PeerProb: 0.3, Tier3PeerProb: 0.03, MultihomeProb: 0.45,
		}
		return cfg, nil
	case "large":
		return core.DefaultWorldConfig(seed), nil
	default:
		return core.WorldConfig{}, fmt.Errorf("unknown size %q (want small, medium or large)", size)
	}
}
