// Command loadgen drives the serving path with a realistic multi-client
// workload and reports throughput and tail latency. By default it builds a
// synthetic store in a temp directory, constructs the API server, and
// drives its handler in-process with one million simulated client
// connection contexts issuing a Zipf-mixed query stream (hot AS lookups,
// cold timeseries, rankings, diffs, bulk exports) while a background
// writer appends rounds mid-load. With -url it drives a live daemon over
// HTTP instead.
//
// Usage:
//
//	loadgen [-clients 1000000] [-workers N] [-duration 5s | -requests N]
//	        [-ases 1000] [-rounds 50] [-zipf 1.1] [-seed 1]
//	        [-append-every 250ms] [-rate-burst 0] [-subscribers N]
//	        [-url http://host:port] [-json]
//
// Example:
//
//	$ go run ./cmd/loadgen -duration 3s
//	1234567 requests in 3.00s → 411522 qps
//	latency p50 1.2µs  p99 8.4µs  p999 31.0µs
//	errors 0  rate-limited 0  appends 12  allocs/req 6.1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/netsec-lab/rovista/internal/api"
	"github.com/netsec-lab/rovista/internal/inet"
	"github.com/netsec-lab/rovista/internal/loadharness"
	"github.com/netsec-lab/rovista/internal/store"
	"github.com/netsec-lab/rovista/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	var (
		clients     = flag.Int("clients", 1_000_000, "simulated client connection contexts (distinct source IPs)")
		workers     = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent driver goroutines")
		duration    = flag.Duration("duration", 5*time.Second, "run length (ignored when -requests is set)")
		requests    = flag.Int64("requests", 0, "stop after this many requests instead of -duration")
		ases        = flag.Int("ases", 1000, "AS population in the synthetic store")
		rounds      = flag.Int("rounds", 50, "measurement rounds in the synthetic store")
		zipfS       = flag.Float64("zipf", 1.1, "Zipf skew for hot-AS and hot-client selection (> 1)")
		seed        = flag.Int64("seed", 1, "workload seed (deterministic per worker)")
		appendEvery = flag.Duration("append-every", 250*time.Millisecond, "background append period (0 disables the storm; in-process only)")
		rateBurst   = flag.Int("rate-burst", 0, "per-client rate-limit burst on the in-process server (0 disables)")
		subscribers = flag.Int("subscribers", 0, "push subscribers draining score deltas published per storm append (in-process only)")
		url         = flag.String("url", "", "drive a live daemon at this base URL instead of in-process")
		jsonOut     = flag.Bool("json", false, "emit the report as JSON")
	)
	flag.Parse()

	cfg := loadharness.Config{
		Clients:  *clients,
		Workers:  *workers,
		Duration: *duration,
		Requests: *requests,
		ZipfS:    *zipfS,
		ASes:     *ases,
		Rounds:   *rounds,
		Seed:     *seed,
	}

	var (
		rep loadharness.Report
		err error
	)
	if *url != "" {
		rep, err = loadharness.RunHTTP(*url, cfg)
	} else {
		dir, derr := os.MkdirTemp("", "loadgen-*")
		if derr != nil {
			log.Fatal(derr)
		}
		defer os.RemoveAll(dir)
		st, serr := store.Open(dir, store.Config{})
		if serr != nil {
			log.Fatal(serr)
		}
		defer st.Close()
		log.Printf("synthesizing %d ASes × %d rounds...", *ases, *rounds)
		if err := store.Synthesize(st, store.SynthConfig{ASes: *ases, Rounds: *rounds, Seed: *seed}); err != nil {
			log.Fatal(err)
		}
		// With -subscribers, a score hub joins the mix: each storm append
		// also publishes that round's synthetic score deltas, and N
		// subscribers drain them — the SSE population of a busy dashboard,
		// measured at the fan-out layer.
		var hub *stream.Hub
		if *subscribers > 0 {
			hub = stream.NewHub()
			cfg.Subscribers = *subscribers
			cfg.Hub = hub
		}
		srv := api.New(st, api.Config{RateBurst: *rateBurst, Stream: hub})
		var stormSeed atomic.Int64
		stormSeed.Store(*seed)
		cfg.AppendEvery = *appendEvery
		cfg.Append = func() error {
			s := stormSeed.Add(1)
			if err := store.Synthesize(st, store.SynthConfig{
				ASes: *ases, Rounds: 1, Seed: s,
			}); err != nil {
				return err
			}
			if hub != nil {
				deltas := make([]stream.ScoreDelta, 64)
				for i := range deltas {
					deltas[i] = stream.ScoreDelta{
						ASN: inet.ASN(1000 + (int(s)*37+i)%*ases),
						Old: float64(i), New: float64(i) + 1,
					}
				}
				hub.Publish(stream.Update{Round: uint32(s), Deltas: deltas})
			}
			return nil
		}
		log.Printf("driving %d clients × %d workers for %s...", cfg.Clients, cfg.Workers, runLabel(cfg))
		rep, err = loadharness.Run(srv.Handler(), cfg)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Println(rep)
}

func runLabel(cfg loadharness.Config) string {
	if cfg.Requests > 0 {
		return fmt.Sprintf("%d requests", cfg.Requests)
	}
	return cfg.Duration.String()
}
